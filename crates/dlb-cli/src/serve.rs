//! `dlb serve` — run a service scenario on either serving engine.
//!
//! ```text
//! dlb serve <scenario.json> [--mode sim|wall] [--workers N]
//!           [--acceptors A] [--out <path>] [--trace <path>]
//! ```
//!
//! `sim` (the default) runs the single-threaded simulated-clock engine:
//! the stats JSON is byte-identical across repeated runs *and* across
//! `--workers`/`--acceptors` values for a fixed seed, which is what CI
//! golden-gates.  `wall` runs `A` sharded acceptors + `N` workers
//! against the real clock and adds the throughput block
//! (`BENCH_service.json` numbers); `--acceptors` overrides the
//! scenario's `acceptors` key (default 1).
//!
//! The process exits non-zero if the conservation ledger breaks.

use dlb_json::ToJson;
use dlb_serve::ServiceScenario;
use dlb_trace::{FileSink, SharedSink};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Sim,
    Wall,
}

pub const SERVE_USAGE: &str = "usage: dlb serve <scenario.json> [--mode sim|wall] \
                               [--workers N] [--acceptors A] [--out <path>] [--trace <path>]";

struct ServeOptions {
    mode: Mode,
    workers: usize,
    /// `None` defers to the scenario's `acceptors` key.
    acceptors: Option<usize>,
    out: Option<String>,
    trace: Option<String>,
}

fn parse_serve_options(rest: &[String]) -> Result<ServeOptions, String> {
    let mut opts = ServeOptions {
        mode: Mode::Sim,
        // Leave a core for the acceptor(s); the sim engine ignores this.
        workers: dlb_pool::default_jobs().saturating_sub(1).max(1),
        acceptors: None,
        out: None,
        trace: None,
    };
    let mut iter = rest.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--mode" => {
                let raw = iter.next().ok_or("--mode needs sim|wall")?;
                opts.mode = match raw.as_str() {
                    "sim" => Mode::Sim,
                    "wall" => Mode::Wall,
                    other => return Err(format!("unknown mode {other:?} (expected sim|wall)")),
                };
            }
            "--workers" => {
                let raw = iter.next().ok_or("--workers needs a thread count")?;
                let parsed: usize = raw
                    .parse()
                    .map_err(|e| format!("invalid --workers {raw:?}: {e}"))?;
                if parsed == 0 {
                    return Err("--workers must be at least 1".into());
                }
                opts.workers = parsed;
            }
            "--acceptors" => {
                let raw = iter.next().ok_or("--acceptors needs a thread count")?;
                let parsed: usize = raw
                    .parse()
                    .map_err(|e| format!("invalid --acceptors {raw:?}: {e}"))?;
                if parsed == 0 {
                    return Err("--acceptors must be at least 1".into());
                }
                opts.acceptors = Some(parsed);
            }
            "--out" => {
                opts.out = Some(iter.next().ok_or("--out needs a path")?.clone());
            }
            "--trace" => {
                opts.trace = Some(iter.next().ok_or("--trace needs a path")?.clone());
            }
            other => return Err(format!("unknown option {other:?}\n{SERVE_USAGE}")),
        }
    }
    Ok(opts)
}

/// Entry point for the `serve` subcommand (`rest` excludes `serve`).
pub fn serve_main(rest: &[String]) -> Result<(), String> {
    let path = rest
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or(SERVE_USAGE)?;
    let opts = parse_serve_options(&rest[1..])?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let scenario =
        ServiceScenario::parse(&text).map_err(|e| format!("invalid scenario {path}: {e}"))?;
    let sink = match &opts.trace {
        Some(trace_path) => Some(SharedSink::new(
            FileSink::create(std::path::Path::new(trace_path))
                .map_err(|e| format!("cannot create trace {trace_path}: {e}"))?,
        )),
        None => None,
    };
    let stats = match opts.mode {
        Mode::Sim => dlb_serve::run_sim(&scenario, sink)?,
        Mode::Wall => {
            let acceptors = opts.acceptors.unwrap_or(scenario.acceptors);
            dlb_serve::run_wall(&scenario, opts.workers, acceptors, sink)?
        }
    };
    // Both engines verify the ledger internally (and error out on a
    // violation), so reaching this point means conservation held.
    assert!(stats.conservation_holds(), "engines enforce the ledger");
    let rendered = stats.to_json().render_pretty();
    match &opts.out {
        Some(out) => std::fs::write(out, rendered.as_bytes())
            .map_err(|e| format!("cannot write {out}: {e}"))?,
        None => println!("{rendered}"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn options_parse_and_reject() {
        let opts = parse_serve_options(&strings(&[
            "--mode",
            "wall",
            "--workers",
            "3",
            "--acceptors",
            "2",
            "--out",
            "x.json",
        ]))
        .unwrap();
        assert_eq!(opts.mode, Mode::Wall);
        assert_eq!(opts.workers, 3);
        assert_eq!(opts.acceptors, Some(2));
        assert_eq!(opts.out.as_deref(), Some("x.json"));
        let defaulted = parse_serve_options(&[]).unwrap();
        assert_eq!(
            defaulted.acceptors, None,
            "absent --acceptors defers to the scenario key"
        );
        assert!(parse_serve_options(&strings(&["--mode", "turbo"])).is_err());
        assert!(parse_serve_options(&strings(&["--workers", "0"])).is_err());
        assert!(parse_serve_options(&strings(&["--acceptors", "0"])).is_err());
        assert!(parse_serve_options(&strings(&["--bogus"])).is_err());
    }

    #[test]
    fn serve_runs_a_scenario_end_to_end_and_is_reproducible() {
        let dir = std::env::temp_dir().join("dlb_serve_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let scen_path = dir.join("scen.json");
        std::fs::write(
            &scen_path,
            r#"{
                "shards": 4, "ticks": 300, "seed": 5, "delta": 2, "f": 2.0,
                "keys": 64, "zipf_s": 1.1, "service_ticks": [1, 3],
                "phases": [{"ticks": 100, "rate": 1.5}],
                "faults": {"crashes": [{"proc": 2, "at": 120, "recover_at": 220}]}
            }"#,
        )
        .unwrap();
        let out_a = dir.join("a.json");
        let out_b = dir.join("b.json");
        for (out, workers) in [(&out_a, "1"), (&out_b, "7")] {
            serve_main(&strings(&[
                scen_path.to_str().unwrap(),
                "--mode",
                "sim",
                "--workers",
                workers,
                "--out",
                out.to_str().unwrap(),
            ]))
            .unwrap();
        }
        let a = std::fs::read(&out_a).unwrap();
        let b = std::fs::read(&out_b).unwrap();
        assert!(!a.is_empty());
        assert_eq!(
            a, b,
            "sim stats must be byte-identical across --workers values"
        );
    }
}
