//! Scenario configuration: a JSON description of *what to run* — network
//! size, balancing strategy, workload, horizon — so experiments can be
//! driven without writing Rust.

use serde::{Deserialize, Serialize};

/// A complete runnable scenario.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct Scenario {
    /// Number of processors.
    pub n: usize,
    /// Global time steps per run.
    pub steps: usize,
    /// Independent seeded runs to average over.
    #[serde(default = "default_runs")]
    pub runs: usize,
    /// Master seed.
    #[serde(default)]
    pub seed: u64,
    /// Ignore the first fraction of each run when summarising quality.
    #[serde(default = "default_warmup")]
    pub warmup_fraction: f64,
    /// The balancing strategy.
    pub strategy: StrategyConfig,
    /// The load pattern.
    pub workload: WorkloadConfig,
}

fn default_runs() -> usize {
    10
}

fn default_warmup() -> f64 {
    0.2
}

/// Which balancer to run.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "kind", rename_all = "kebab-case")]
pub enum StrategyConfig {
    /// The full §4 virtual-load-class algorithm.
    Full {
        /// Partners per balancing operation.
        delta: usize,
        /// Trigger factor.
        f: f64,
        /// Borrow limit.
        #[serde(default = "default_c")]
        c: usize,
    },
    /// The practical raw-load variant.
    Simple {
        /// Partners per balancing operation.
        delta: usize,
        /// Trigger factor.
        f: f64,
    },
    /// Speed-proportional balancing for heterogeneous processors.
    Weighted {
        /// Partners per balancing operation.
        delta: usize,
        /// Trigger factor.
        f: f64,
        /// Relative speed per processor (length must equal `n`).
        speeds: Vec<u64>,
    },
    /// The practical variant on an explicit topology.
    Topo {
        /// Partners per balancing operation.
        delta: usize,
        /// Trigger factor.
        f: f64,
        /// Interconnect.
        topology: TopologyConfig,
        /// Restrict partners to topology neighbours.
        #[serde(default)]
        neighbors_only: bool,
    },
    /// Rudolph/Slivkin-Allalouf/Upfal '91.
    Rsu91,
    /// Cilk-style random work stealing.
    WorkStealing,
    /// The §5 random-scatter strawman.
    RandomScatter,
    /// First-order diffusion on a topology (Cybenko).
    Diffusion {
        /// Interconnect.
        topology: TopologyConfig,
        /// Exchange coefficient (0 < alpha <= 0.5).
        alpha: f64,
    },
    /// Lin–Keller gradient model.
    Gradient {
        /// Interconnect.
        topology: TopologyConfig,
        /// Low watermark (attracts work below this load).
        low: u64,
        /// High watermark (sheds work above this load).
        high: u64,
    },
    /// No balancing.
    None,
}

fn default_c() -> usize {
    4
}

/// Interconnect topologies.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "kind", rename_all = "kebab-case")]
pub enum TopologyConfig {
    /// Fully connected.
    Complete,
    /// A cycle.
    Ring,
    /// `w × h` wrap-around grid (`w·h` must equal `n`).
    Torus {
        /// Width.
        w: usize,
        /// Height.
        h: usize,
    },
    /// Hypercube on `2^dim` processors.
    Hypercube {
        /// Dimension.
        dim: u32,
    },
    /// Binary de Bruijn graph on `2^dim` processors.
    DeBruijn {
        /// Dimension.
        dim: u32,
    },
    /// Star with centre 0.
    Star,
}

/// Which workload drives the run.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(tag = "kind", rename_all = "kebab-case")]
pub enum WorkloadConfig {
    /// The paper's §7 phase model.
    Phase {
        /// Generation probability range.
        #[serde(default = "default_g")]
        g: (f64, f64),
        /// Consumption probability range.
        #[serde(default = "default_cc")]
        c: (f64, f64),
        /// Phase length range.
        #[serde(default = "default_len")]
        len: (usize, usize),
    },
    /// One processor generates every step.
    OneProducer {
        /// Index of the producer.
        #[serde(default)]
        producer: usize,
    },
    /// Independent per-processor coin flips.
    Uniform {
        /// P(generate).
        p_gen: f64,
        /// P(consume).
        p_con: f64,
    },
    /// A generating hotspot that moves every `period` steps.
    MovingHotspot {
        /// Steps between hotspot moves.
        period: usize,
        /// P(consume) for everyone else.
        p_con: f64,
    },
    /// Half produce, half consume, roles swap periodically.
    Split {
        /// Steps between role swaps.
        swap_every: usize,
    },
}

fn default_g() -> (f64, f64) {
    (0.1, 0.9)
}

fn default_cc() -> (f64, f64) {
    (0.1, 0.7)
}

fn default_len() -> (usize, usize) {
    (150, 400)
}

impl Scenario {
    /// Parses a scenario from JSON.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let scenario: Scenario = serde_json::from_str(text).map_err(|e| e.to_string())?;
        scenario.validate()?;
        Ok(scenario)
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("scenario serialisation cannot fail")
    }

    /// Checks cross-field constraints.
    pub fn validate(&self) -> Result<(), String> {
        if self.n < 2 {
            return Err("need at least 2 processors".into());
        }
        if self.steps == 0 || self.runs == 0 {
            return Err("steps and runs must be positive".into());
        }
        if !(0.0..1.0).contains(&self.warmup_fraction) {
            return Err("warmup_fraction must lie in [0, 1)".into());
        }
        if let StrategyConfig::Weighted { speeds, .. } = &self.strategy {
            if speeds.len() != self.n {
                return Err(format!(
                    "weighted strategy needs {} speeds, got {}",
                    self.n,
                    speeds.len()
                ));
            }
        }
        Ok(())
    }

    /// The built-in demo scenario (paper §7 on 64 processors).
    pub fn demo() -> Self {
        Scenario {
            n: 64,
            steps: 500,
            runs: 10,
            seed: 42,
            warmup_fraction: 0.2,
            strategy: StrategyConfig::Simple { delta: 1, f: 1.1 },
            workload: WorkloadConfig::Phase {
                g: default_g(),
                c: default_cc(),
                len: default_len(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_roundtrips() {
        let demo = Scenario::demo();
        let json = demo.to_json();
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(demo, back);
    }

    #[test]
    fn minimal_json_with_defaults() {
        let text = r#"{
            "n": 8, "steps": 100,
            "strategy": {"kind": "simple", "delta": 1, "f": 1.2},
            "workload": {"kind": "one-producer"}
        }"#;
        let s = Scenario::from_json(text).unwrap();
        assert_eq!(s.runs, 10, "default runs");
        assert_eq!(s.seed, 0, "default seed");
        assert!(matches!(s.workload, WorkloadConfig::OneProducer { producer: 0 }));
    }

    #[test]
    fn validation_errors() {
        let mut s = Scenario::demo();
        s.n = 1;
        assert!(s.validate().is_err());
        let mut s = Scenario::demo();
        s.strategy = StrategyConfig::Weighted { delta: 1, f: 1.1, speeds: vec![1, 2] };
        assert!(s.validate().unwrap_err().contains("speeds"));
        assert!(Scenario::from_json("{").is_err());
    }

    #[test]
    fn all_strategy_kinds_parse() {
        for kind in [
            r#"{"kind": "full", "delta": 2, "f": 1.3}"#,
            r#"{"kind": "simple", "delta": 1, "f": 1.1}"#,
            r#"{"kind": "topo", "delta": 1, "f": 1.1, "topology": {"kind": "ring"}, "neighbors_only": true}"#,
            r#"{"kind": "rsu91"}"#,
            r#"{"kind": "work-stealing"}"#,
            r#"{"kind": "random-scatter"}"#,
            r#"{"kind": "gradient", "topology": {"kind": "hypercube", "dim": 3}, "low": 2, "high": 8}"#,
            r#"{"kind": "diffusion", "topology": {"kind": "ring"}, "alpha": 0.25}"#,
            r#"{"kind": "none"}"#,
        ] {
            let parsed: Result<StrategyConfig, _> = serde_json::from_str(kind);
            assert!(parsed.is_ok(), "{kind}: {parsed:?}");
        }
    }
}
