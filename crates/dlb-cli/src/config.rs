//! Scenario configuration: a JSON description of *what to run* — network
//! size, balancing strategy, workload, horizon, optional fault plan — so
//! experiments can be driven without writing Rust.

use dlb_faults::FaultPlan;
use dlb_json::{FromJson, Json, ToJson};
use dlb_workload::sparse::SparsePattern;

/// A complete runnable scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Number of processors.
    pub n: usize,
    /// Global time steps per run.
    pub steps: usize,
    /// Independent seeded runs to average over.
    pub runs: usize,
    /// Master seed.
    pub seed: u64,
    /// Ignore the first fraction of each run when summarising quality.
    pub warmup_fraction: f64,
    /// The balancing strategy.
    pub strategy: StrategyConfig,
    /// Optional rival strategies: when non-empty, `dlb run` races
    /// `strategy` against each entry on the identical workload, fault
    /// plan and seeds, and prints a league table instead of a single
    /// report.
    pub balancer: Vec<StrategyConfig>,
    /// The load pattern.
    pub workload: WorkloadConfig,
    /// Optional fault injection: message loss, duplication, jitter,
    /// crashes and partitions, applied per run with a per-run seed.
    pub faults: Option<FaultPlan>,
    /// Optional JSONL trace output path (`dlb run --trace` overrides).
    pub trace: Option<String>,
}

fn default_runs() -> usize {
    10
}

fn default_warmup() -> f64 {
    0.2
}

/// Which balancer to run.
#[derive(Debug, Clone, PartialEq)]
pub enum StrategyConfig {
    /// The full §4 virtual-load-class algorithm.
    Full {
        /// Partners per balancing operation.
        delta: usize,
        /// Trigger factor.
        f: f64,
        /// Borrow limit.
        c: usize,
    },
    /// The full algorithm on the retired flat-arena engine
    /// (`DenseCluster`) — bit-identical to `full`; exists so the dense
    /// oracle stays reachable end to end from scenarios.
    FullDense {
        /// Partners per balancing operation.
        delta: usize,
        /// Trigger factor.
        f: f64,
        /// Borrow limit.
        c: usize,
    },
    /// The practical raw-load variant.
    Simple {
        /// Partners per balancing operation.
        delta: usize,
        /// Trigger factor.
        f: f64,
    },
    /// The practical variant run as a message-level asynchronous
    /// protocol (the substrate fault plans act on).
    Async {
        /// Partners per balancing operation.
        delta: usize,
        /// Trigger factor.
        f: f64,
        /// Message latency in time units (one generate/consume tick = 1).
        latency: u64,
    },
    /// Speed-proportional balancing for heterogeneous processors.
    Weighted {
        /// Partners per balancing operation.
        delta: usize,
        /// Trigger factor.
        f: f64,
        /// Relative speed per processor (length must equal `n`).
        speeds: Vec<u64>,
    },
    /// The practical variant on an explicit topology.
    Topo {
        /// Partners per balancing operation.
        delta: usize,
        /// Trigger factor.
        f: f64,
        /// Interconnect.
        topology: TopologyConfig,
        /// Restrict partners to topology neighbours.
        neighbors_only: bool,
    },
    /// Rudolph/Slivkin-Allalouf/Upfal '91.
    Rsu91,
    /// Cilk-style random work stealing.
    WorkStealing,
    /// The §5 random-scatter strawman.
    RandomScatter,
    /// First-order diffusion on a topology (Cybenko).
    Diffusion {
        /// Interconnect.
        topology: TopologyConfig,
        /// Exchange coefficient (0 < alpha <= 0.5).
        alpha: f64,
    },
    /// Lin–Keller gradient model.
    Gradient {
        /// Interconnect.
        topology: TopologyConfig,
        /// Low watermark (attracts work below this load).
        low: u64,
        /// High watermark (sheds work above this load).
        high: u64,
    },
    /// Rotor-router quasirandom balancing (arXiv:1006.3302).
    Quasirandom {
        /// Interconnect.
        topology: TopologyConfig,
    },
    /// Randomised pairwise averaging (arXiv:2302.12201).
    DynamicAveraging {
        /// Interconnect.
        topology: TopologyConfig,
    },
    /// Greedy unit-token moves to the lightest neighbour (arXiv:1502.04511).
    LocallyOptimal {
        /// Interconnect.
        topology: TopologyConfig,
    },
    /// Dimension-exchange matchings (arXiv:1308.0148); topology must be
    /// a hypercube, torus or ring.
    DimensionExchange {
        /// Interconnect.
        topology: TopologyConfig,
    },
    /// No balancing.
    None,
}

fn default_c() -> usize {
    4
}

fn default_latency() -> u64 {
    4
}

/// Interconnect topologies.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyConfig {
    /// Fully connected.
    Complete,
    /// A cycle.
    Ring,
    /// `w × h` wrap-around grid (`w·h` must equal `n`).
    Torus {
        /// Width.
        w: usize,
        /// Height.
        h: usize,
    },
    /// Hypercube on `2^dim` processors.
    Hypercube {
        /// Dimension.
        dim: u32,
    },
    /// Binary de Bruijn graph on `2^dim` processors.
    DeBruijn {
        /// Dimension.
        dim: u32,
    },
    /// Star with centre 0.
    Star,
}

/// Which workload drives the run.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadConfig {
    /// The paper's §7 phase model.
    Phase {
        /// Generation probability range.
        g: (f64, f64),
        /// Consumption probability range.
        c: (f64, f64),
        /// Phase length range.
        len: (usize, usize),
    },
    /// One processor generates every step.
    OneProducer {
        /// Index of the producer.
        producer: usize,
    },
    /// Independent per-processor coin flips.
    Uniform {
        /// P(generate).
        p_gen: f64,
        /// P(consume).
        p_con: f64,
    },
    /// A generating hotspot that moves every `period` steps.
    MovingHotspot {
        /// Steps between hotspot moves.
        period: usize,
        /// P(consume) for everyone else.
        p_con: f64,
    },
    /// Half produce, half consume, roles swap periodically.
    Split {
        /// Steps between role swaps.
        swap_every: usize,
    },
    /// An event-driven structurally sparse pattern (see
    /// [`dlb_workload::sparse`]): only the active processors are
    /// visited each step, so these are the patterns that scale to
    /// `n = 2²⁰`.  JSON kinds: `sparse-phase`, `sparse-hotspot`,
    /// `sparse-bursty`, `sparse-arrivals`.
    Sparse {
        /// Which sparse pattern runs.
        pattern: SparsePattern,
    },
}

impl WorkloadConfig {
    /// Whether this workload supports the event-driven sparse stepping
    /// path (`dlb run` takes it automatically unless `--dense` forces
    /// the O(n)-per-step path).
    pub fn is_sparse(&self) -> bool {
        matches!(self, WorkloadConfig::Sparse { .. })
    }
}

fn default_g() -> (f64, f64) {
    (0.1, 0.9)
}

fn default_cc() -> (f64, f64) {
    (0.1, 0.7)
}

fn default_len() -> (usize, usize) {
    (150, 400)
}

fn kind_of<'a>(value: &'a Json, what: &str) -> Result<&'a str, String> {
    value
        .get("kind")
        .and_then(|k| k.as_str())
        .ok_or_else(|| format!("{what} needs a string \"kind\" field"))
}

fn pair<T: FromJson + Copy>(value: &Json, key: &str, default: (T, T)) -> Result<(T, T), String> {
    match value.get(key) {
        None => Ok(default),
        Some(v) => {
            let items: Vec<T> = FromJson::from_json(v).map_err(|e| format!("{key}: {e}"))?;
            match items[..] {
                [lo, hi] => Ok((lo, hi)),
                _ => Err(format!(
                    "{key} must hold exactly [lo, hi], got {} items",
                    items.len()
                )),
            }
        }
    }
}

fn pair_json<T: ToJson>(pair: &(T, T)) -> Json {
    Json::Arr(vec![pair.0.to_json(), pair.1.to_json()])
}

impl ToJson for TopologyConfig {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = Vec::new();
        let kind = match self {
            TopologyConfig::Complete => "complete",
            TopologyConfig::Ring => "ring",
            TopologyConfig::Torus { w, h } => {
                fields.push(("w".into(), w.to_json()));
                fields.push(("h".into(), h.to_json()));
                "torus"
            }
            TopologyConfig::Hypercube { dim } => {
                fields.push(("dim".into(), dim.to_json()));
                "hypercube"
            }
            TopologyConfig::DeBruijn { dim } => {
                fields.push(("dim".into(), dim.to_json()));
                "de-bruijn"
            }
            TopologyConfig::Star => "star",
        };
        let mut obj = vec![("kind".to_string(), Json::Str(kind.to_string()))];
        obj.extend(fields);
        Json::Obj(obj)
    }
}

impl FromJson for TopologyConfig {
    fn from_json(value: &Json) -> Result<Self, String> {
        let kind = kind_of(value, "topology")?;
        let allowed: &[&str] = match kind {
            "torus" => &["kind", "w", "h"],
            "hypercube" | "de-bruijn" => &["kind", "dim"],
            _ => &["kind"],
        };
        dlb_json::reject_unknown(value, allowed)?;
        match kind {
            "complete" => Ok(TopologyConfig::Complete),
            "ring" => Ok(TopologyConfig::Ring),
            "torus" => Ok(TopologyConfig::Torus {
                w: dlb_json::req(value, "w")?,
                h: dlb_json::req(value, "h")?,
            }),
            "hypercube" => Ok(TopologyConfig::Hypercube {
                dim: dlb_json::req(value, "dim")?,
            }),
            "de-bruijn" => Ok(TopologyConfig::DeBruijn {
                dim: dlb_json::req(value, "dim")?,
            }),
            "star" => Ok(TopologyConfig::Star),
            other => Err(format!("unknown topology kind {other:?}")),
        }
    }
}

impl ToJson for StrategyConfig {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = Vec::new();
        let kind = match self {
            StrategyConfig::Full { delta, f, c } => {
                fields.push(("delta".into(), delta.to_json()));
                fields.push(("f".into(), f.to_json()));
                fields.push(("c".into(), c.to_json()));
                "full"
            }
            StrategyConfig::FullDense { delta, f, c } => {
                fields.push(("delta".into(), delta.to_json()));
                fields.push(("f".into(), f.to_json()));
                fields.push(("c".into(), c.to_json()));
                "full-dense"
            }
            StrategyConfig::Simple { delta, f } => {
                fields.push(("delta".into(), delta.to_json()));
                fields.push(("f".into(), f.to_json()));
                "simple"
            }
            StrategyConfig::Async { delta, f, latency } => {
                fields.push(("delta".into(), delta.to_json()));
                fields.push(("f".into(), f.to_json()));
                fields.push(("latency".into(), latency.to_json()));
                "async"
            }
            StrategyConfig::Weighted { delta, f, speeds } => {
                fields.push(("delta".into(), delta.to_json()));
                fields.push(("f".into(), f.to_json()));
                fields.push(("speeds".into(), speeds.to_json()));
                "weighted"
            }
            StrategyConfig::Topo {
                delta,
                f,
                topology,
                neighbors_only,
            } => {
                fields.push(("delta".into(), delta.to_json()));
                fields.push(("f".into(), f.to_json()));
                fields.push(("topology".into(), topology.to_json()));
                fields.push(("neighbors_only".into(), neighbors_only.to_json()));
                "topo"
            }
            StrategyConfig::Rsu91 => "rsu91",
            StrategyConfig::WorkStealing => "work-stealing",
            StrategyConfig::RandomScatter => "random-scatter",
            StrategyConfig::Diffusion { topology, alpha } => {
                fields.push(("topology".into(), topology.to_json()));
                fields.push(("alpha".into(), alpha.to_json()));
                "diffusion"
            }
            StrategyConfig::Gradient {
                topology,
                low,
                high,
            } => {
                fields.push(("topology".into(), topology.to_json()));
                fields.push(("low".into(), low.to_json()));
                fields.push(("high".into(), high.to_json()));
                "gradient"
            }
            StrategyConfig::Quasirandom { topology } => {
                fields.push(("topology".into(), topology.to_json()));
                "quasirandom"
            }
            StrategyConfig::DynamicAveraging { topology } => {
                fields.push(("topology".into(), topology.to_json()));
                "dynamic-averaging"
            }
            StrategyConfig::LocallyOptimal { topology } => {
                fields.push(("topology".into(), topology.to_json()));
                "locally-optimal"
            }
            StrategyConfig::DimensionExchange { topology } => {
                fields.push(("topology".into(), topology.to_json()));
                "dimension-exchange"
            }
            StrategyConfig::None => "none",
        };
        let mut obj = vec![("kind".to_string(), Json::Str(kind.to_string()))];
        obj.extend(fields);
        Json::Obj(obj)
    }
}

impl FromJson for StrategyConfig {
    fn from_json(value: &Json) -> Result<Self, String> {
        let kind = kind_of(value, "strategy")?;
        let allowed: &[&str] = match kind {
            "full" | "full-dense" => &["kind", "delta", "f", "c"],
            "simple" => &["kind", "delta", "f"],
            "async" => &["kind", "delta", "f", "latency"],
            "weighted" => &["kind", "delta", "f", "speeds"],
            "topo" => &["kind", "delta", "f", "topology", "neighbors_only"],
            "diffusion" => &["kind", "topology", "alpha"],
            "gradient" => &["kind", "topology", "low", "high"],
            "quasirandom" | "dynamic-averaging" | "locally-optimal" | "dimension-exchange" => {
                &["kind", "topology"]
            }
            _ => &["kind"],
        };
        dlb_json::reject_unknown(value, allowed)?;
        match kind {
            "full" => Ok(StrategyConfig::Full {
                delta: dlb_json::req(value, "delta")?,
                f: dlb_json::req(value, "f")?,
                c: dlb_json::field_or(value, "c", default_c())?,
            }),
            "full-dense" => Ok(StrategyConfig::FullDense {
                delta: dlb_json::req(value, "delta")?,
                f: dlb_json::req(value, "f")?,
                c: dlb_json::field_or(value, "c", default_c())?,
            }),
            "simple" => Ok(StrategyConfig::Simple {
                delta: dlb_json::req(value, "delta")?,
                f: dlb_json::req(value, "f")?,
            }),
            "async" => Ok(StrategyConfig::Async {
                delta: dlb_json::req(value, "delta")?,
                f: dlb_json::req(value, "f")?,
                latency: dlb_json::field_or(value, "latency", default_latency())?,
            }),
            "weighted" => Ok(StrategyConfig::Weighted {
                delta: dlb_json::req(value, "delta")?,
                f: dlb_json::req(value, "f")?,
                speeds: dlb_json::req(value, "speeds")?,
            }),
            "topo" => Ok(StrategyConfig::Topo {
                delta: dlb_json::req(value, "delta")?,
                f: dlb_json::req(value, "f")?,
                topology: dlb_json::req(value, "topology")?,
                neighbors_only: dlb_json::field_or(value, "neighbors_only", false)?,
            }),
            "rsu91" => Ok(StrategyConfig::Rsu91),
            "work-stealing" => Ok(StrategyConfig::WorkStealing),
            "random-scatter" => Ok(StrategyConfig::RandomScatter),
            "diffusion" => Ok(StrategyConfig::Diffusion {
                topology: dlb_json::req(value, "topology")?,
                alpha: dlb_json::req(value, "alpha")?,
            }),
            "gradient" => Ok(StrategyConfig::Gradient {
                topology: dlb_json::req(value, "topology")?,
                low: dlb_json::req(value, "low")?,
                high: dlb_json::req(value, "high")?,
            }),
            "quasirandom" => Ok(StrategyConfig::Quasirandom {
                topology: dlb_json::req(value, "topology")?,
            }),
            "dynamic-averaging" => Ok(StrategyConfig::DynamicAveraging {
                topology: dlb_json::req(value, "topology")?,
            }),
            "locally-optimal" => Ok(StrategyConfig::LocallyOptimal {
                topology: dlb_json::req(value, "topology")?,
            }),
            "dimension-exchange" => Ok(StrategyConfig::DimensionExchange {
                topology: dlb_json::req(value, "topology")?,
            }),
            "none" => Ok(StrategyConfig::None),
            other => Err(format!("unknown strategy kind {other:?}")),
        }
    }
}

impl ToJson for WorkloadConfig {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = Vec::new();
        let kind = match self {
            WorkloadConfig::Phase { g, c, len } => {
                fields.push(("g".into(), pair_json(g)));
                fields.push(("c".into(), pair_json(c)));
                fields.push(("len".into(), pair_json(len)));
                "phase"
            }
            WorkloadConfig::OneProducer { producer } => {
                fields.push(("producer".into(), producer.to_json()));
                "one-producer"
            }
            WorkloadConfig::Uniform { p_gen, p_con } => {
                fields.push(("p_gen".into(), p_gen.to_json()));
                fields.push(("p_con".into(), p_con.to_json()));
                "uniform"
            }
            WorkloadConfig::MovingHotspot { period, p_con } => {
                fields.push(("period".into(), period.to_json()));
                fields.push(("p_con".into(), p_con.to_json()));
                "moving-hotspot"
            }
            WorkloadConfig::Split { swap_every } => {
                fields.push(("swap_every".into(), swap_every.to_json()));
                "split"
            }
            WorkloadConfig::Sparse { pattern } => match pattern {
                SparsePattern::Phase { work, gap } => {
                    fields.push(("work".into(), work.to_json()));
                    fields.push(("gap".into(), pair_json(gap)));
                    "sparse-phase"
                }
                SparsePattern::Hotspot {
                    period,
                    consumer_gap,
                } => {
                    fields.push(("period".into(), period.to_json()));
                    fields.push(("consumer_gap".into(), consumer_gap.to_json()));
                    "sparse-hotspot"
                }
                SparsePattern::Bursty {
                    burst,
                    quiet,
                    quiet_gap,
                } => {
                    fields.push(("burst".into(), burst.to_json()));
                    fields.push(("quiet".into(), quiet.to_json()));
                    fields.push(("quiet_gap".into(), quiet_gap.to_json()));
                    "sparse-bursty"
                }
                SparsePattern::Arrivals {
                    arrival_gap,
                    service_gap,
                } => {
                    fields.push(("arrival_gap".into(), arrival_gap.to_json()));
                    fields.push(("service_gap".into(), service_gap.to_json()));
                    "sparse-arrivals"
                }
            },
        };
        let mut obj = vec![("kind".to_string(), Json::Str(kind.to_string()))];
        obj.extend(fields);
        Json::Obj(obj)
    }
}

impl FromJson for WorkloadConfig {
    fn from_json(value: &Json) -> Result<Self, String> {
        let kind = kind_of(value, "workload")?;
        let allowed: &[&str] = match kind {
            "phase" => &["kind", "g", "c", "len"],
            "one-producer" => &["kind", "producer"],
            "uniform" => &["kind", "p_gen", "p_con"],
            "moving-hotspot" => &["kind", "period", "p_con"],
            "split" => &["kind", "swap_every"],
            "sparse-phase" => &["kind", "work", "gap"],
            "sparse-hotspot" => &["kind", "period", "consumer_gap"],
            "sparse-bursty" => &["kind", "burst", "quiet", "quiet_gap"],
            "sparse-arrivals" => &["kind", "arrival_gap", "service_gap"],
            _ => &["kind"],
        };
        dlb_json::reject_unknown(value, allowed)?;
        match kind {
            "phase" => Ok(WorkloadConfig::Phase {
                g: pair(value, "g", default_g())?,
                c: pair(value, "c", default_cc())?,
                len: pair(value, "len", default_len())?,
            }),
            "one-producer" => Ok(WorkloadConfig::OneProducer {
                producer: dlb_json::field_or(value, "producer", 0)?,
            }),
            "uniform" => Ok(WorkloadConfig::Uniform {
                p_gen: dlb_json::req(value, "p_gen")?,
                p_con: dlb_json::req(value, "p_con")?,
            }),
            "moving-hotspot" => Ok(WorkloadConfig::MovingHotspot {
                period: dlb_json::req(value, "period")?,
                p_con: dlb_json::req(value, "p_con")?,
            }),
            "split" => Ok(WorkloadConfig::Split {
                swap_every: dlb_json::req(value, "swap_every")?,
            }),
            "sparse-phase" => Ok(WorkloadConfig::Sparse {
                pattern: SparsePattern::Phase {
                    work: dlb_json::field_or(value, "work", 1)?,
                    gap: pair(value, "gap", (50, 150))?,
                },
            }),
            "sparse-hotspot" => Ok(WorkloadConfig::Sparse {
                pattern: SparsePattern::Hotspot {
                    period: dlb_json::req(value, "period")?,
                    consumer_gap: dlb_json::req(value, "consumer_gap")?,
                },
            }),
            "sparse-bursty" => Ok(WorkloadConfig::Sparse {
                pattern: SparsePattern::Bursty {
                    burst: dlb_json::req(value, "burst")?,
                    quiet: dlb_json::req(value, "quiet")?,
                    quiet_gap: dlb_json::req(value, "quiet_gap")?,
                },
            }),
            "sparse-arrivals" => Ok(WorkloadConfig::Sparse {
                pattern: SparsePattern::Arrivals {
                    arrival_gap: dlb_json::req(value, "arrival_gap")?,
                    service_gap: dlb_json::req(value, "service_gap")?,
                },
            }),
            other => Err(format!("unknown workload kind {other:?}")),
        }
    }
}

impl ToJson for Scenario {
    fn to_json(&self) -> Json {
        let mut obj = vec![
            ("n".to_string(), self.n.to_json()),
            ("steps".to_string(), self.steps.to_json()),
            ("runs".to_string(), self.runs.to_json()),
            ("seed".to_string(), self.seed.to_json()),
            (
                "warmup_fraction".to_string(),
                self.warmup_fraction.to_json(),
            ),
            ("strategy".to_string(), self.strategy.to_json()),
            ("workload".to_string(), self.workload.to_json()),
        ];
        if !self.balancer.is_empty() {
            obj.push(("balancer".to_string(), self.balancer.to_json()));
        }
        if let Some(faults) = &self.faults {
            obj.push(("faults".to_string(), faults.to_json()));
        }
        if let Some(trace) = &self.trace {
            obj.push(("trace".to_string(), Json::Str(trace.clone())));
        }
        Json::Obj(obj)
    }
}

impl FromJson for Scenario {
    fn from_json(value: &Json) -> Result<Self, String> {
        dlb_json::reject_unknown(
            value,
            &[
                "n",
                "steps",
                "runs",
                "seed",
                "warmup_fraction",
                "strategy",
                "workload",
                "balancer",
                "faults",
                "trace",
            ],
        )?;
        let faults = match value.get("faults") {
            None | Some(Json::Null) => None,
            Some(v) => Some(FaultPlan::from_json(v).map_err(|e| format!("faults: {e}"))?),
        };
        let trace = match value.get("trace") {
            None | Some(Json::Null) => None,
            Some(v) => Some(v.as_str().ok_or("trace must be a string path")?.to_string()),
        };
        Ok(Scenario {
            n: dlb_json::req(value, "n")?,
            steps: dlb_json::req(value, "steps")?,
            runs: dlb_json::field_or(value, "runs", default_runs())?,
            seed: dlb_json::field_or(value, "seed", 0)?,
            warmup_fraction: dlb_json::field_or(value, "warmup_fraction", default_warmup())?,
            strategy: dlb_json::req(value, "strategy")?,
            workload: dlb_json::req(value, "workload")?,
            balancer: dlb_json::field_or(value, "balancer", Vec::new())?,
            faults,
            trace,
        })
    }
}

impl Scenario {
    /// Parses a scenario from JSON.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let scenario: Scenario = FromJson::from_json(&Json::parse(text)?)?;
        scenario.validate()?;
        Ok(scenario)
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        ToJson::to_json(self).render_pretty()
    }

    /// Checks cross-field constraints.
    pub fn validate(&self) -> Result<(), String> {
        if self.n < 2 {
            return Err("need at least 2 processors".into());
        }
        if self.steps == 0 || self.runs == 0 {
            return Err("steps and runs must be positive".into());
        }
        if !(0.0..1.0).contains(&self.warmup_fraction) {
            return Err("warmup_fraction must lie in [0, 1)".into());
        }
        for strategy in std::iter::once(&self.strategy).chain(&self.balancer) {
            if let StrategyConfig::Weighted { speeds, .. } = strategy {
                if speeds.len() != self.n {
                    return Err(format!(
                        "weighted strategy needs {} speeds, got {}",
                        self.n,
                        speeds.len()
                    ));
                }
            }
        }
        if !self.balancer.is_empty() {
            for strategy in std::iter::once(&self.strategy).chain(&self.balancer) {
                if matches!(strategy, StrategyConfig::Async { .. }) {
                    return Err("the balancer league runs synchronous steps; \
                         \"async\" cannot be a league contender"
                        .into());
                }
            }
        }
        if let WorkloadConfig::Sparse { pattern } = &self.workload {
            pattern.validate().map_err(|e| format!("workload: {e}"))?;
        }
        if let Some(faults) = &self.faults {
            faults
                .validate(self.n)
                .map_err(|e| format!("faults: {e}"))?;
        }
        Ok(())
    }

    /// The built-in demo scenario (paper §7 on 64 processors).
    pub fn demo() -> Self {
        Scenario {
            n: 64,
            steps: 500,
            runs: 10,
            seed: 42,
            warmup_fraction: 0.2,
            strategy: StrategyConfig::Simple { delta: 1, f: 1.1 },
            workload: WorkloadConfig::Phase {
                g: default_g(),
                c: default_cc(),
                len: default_len(),
            },
            balancer: Vec::new(),
            faults: None,
            trace: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_faults::{CrashEvent, CrashMode};

    #[test]
    fn demo_roundtrips() {
        let demo = Scenario::demo();
        let json = demo.to_json();
        let back = Scenario::from_json(&json).unwrap();
        assert_eq!(demo, back);
    }

    #[test]
    fn minimal_json_with_defaults() {
        let text = r#"{
            "n": 8, "steps": 100,
            "strategy": {"kind": "simple", "delta": 1, "f": 1.2},
            "workload": {"kind": "one-producer"}
        }"#;
        let s = Scenario::from_json(text).unwrap();
        assert_eq!(s.runs, 10, "default runs");
        assert_eq!(s.seed, 0, "default seed");
        assert!(matches!(
            s.workload,
            WorkloadConfig::OneProducer { producer: 0 }
        ));
        assert_eq!(s.faults, None, "no faults by default");
    }

    #[test]
    fn validation_errors() {
        let mut s = Scenario::demo();
        s.n = 1;
        assert!(s.validate().is_err());
        let mut s = Scenario::demo();
        s.strategy = StrategyConfig::Weighted {
            delta: 1,
            f: 1.1,
            speeds: vec![1, 2],
        };
        assert!(s.validate().unwrap_err().contains("speeds"));
        let mut s = Scenario::demo();
        s.faults = Some(FaultPlan {
            loss: 2.0,
            ..FaultPlan::default()
        });
        assert!(s.validate().unwrap_err().contains("faults"));
        assert!(Scenario::from_json("{").is_err());
    }

    #[test]
    fn trace_field_roundtrips_and_defaults_to_none() {
        let mut s = Scenario::demo();
        assert_eq!(s.trace, None);
        assert!(!s.to_json().contains("trace"), "omitted when None");
        s.trace = Some("out/trace.jsonl".to_string());
        let back = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(back.trace.as_deref(), Some("out/trace.jsonl"));
    }

    #[test]
    fn all_strategy_kinds_parse() {
        for kind in [
            r#"{"kind": "full", "delta": 2, "f": 1.3}"#,
            r#"{"kind": "full-dense", "delta": 2, "f": 1.3, "c": 4}"#,
            r#"{"kind": "simple", "delta": 1, "f": 1.1}"#,
            r#"{"kind": "async", "delta": 2, "f": 1.3, "latency": 8}"#,
            r#"{"kind": "async", "delta": 2, "f": 1.3}"#,
            r#"{"kind": "topo", "delta": 1, "f": 1.1, "topology": {"kind": "ring"}, "neighbors_only": true}"#,
            r#"{"kind": "rsu91"}"#,
            r#"{"kind": "work-stealing"}"#,
            r#"{"kind": "random-scatter"}"#,
            r#"{"kind": "gradient", "topology": {"kind": "hypercube", "dim": 3}, "low": 2, "high": 8}"#,
            r#"{"kind": "diffusion", "topology": {"kind": "ring"}, "alpha": 0.25}"#,
            r#"{"kind": "quasirandom", "topology": {"kind": "hypercube", "dim": 3}}"#,
            r#"{"kind": "dynamic-averaging", "topology": {"kind": "complete"}}"#,
            r#"{"kind": "locally-optimal", "topology": {"kind": "torus", "w": 2, "h": 4}}"#,
            r#"{"kind": "dimension-exchange", "topology": {"kind": "ring"}}"#,
            r#"{"kind": "none"}"#,
        ] {
            let value = Json::parse(kind).unwrap();
            let parsed = StrategyConfig::from_json(&value);
            assert!(parsed.is_ok(), "{kind}: {parsed:?}");
        }
    }

    #[test]
    fn unknown_keys_rejected_with_key_path() {
        // Top level.
        let text = r#"{
            "n": 8, "steps": 100, "stepz": 1,
            "strategy": {"kind": "simple", "delta": 1, "f": 1.2},
            "workload": {"kind": "one-producer"}
        }"#;
        let err = Scenario::from_json(text).unwrap_err();
        assert!(err.contains("\"stepz\""), "{err}");

        // Nested: the wrapping `field '...'` context forms the key path.
        let text = r#"{
            "n": 8, "steps": 100,
            "strategy": {"kind": "simple", "delta": 1, "f": 1.2, "partners": 3},
            "workload": {"kind": "one-producer"}
        }"#;
        let err = Scenario::from_json(text).unwrap_err();
        assert!(err.contains("field 'strategy'"), "{err}");
        assert!(err.contains("\"partners\""), "{err}");

        let text = r#"{
            "n": 8, "steps": 100,
            "strategy": {"kind": "simple", "delta": 1, "f": 1.2},
            "workload": {"kind": "one-producer", "producers": 2}
        }"#;
        let err = Scenario::from_json(text).unwrap_err();
        assert!(err.contains("field 'workload'"), "{err}");
        assert!(err.contains("\"producers\""), "{err}");

        // Three levels deep: strategy -> topology.
        let text = r#"{
            "n": 8, "steps": 100,
            "strategy": {"kind": "topo", "delta": 1, "f": 1.2,
                         "topology": {"kind": "hypercube", "dim": 3, "w": 2}},
            "workload": {"kind": "one-producer"}
        }"#;
        let err = Scenario::from_json(text).unwrap_err();
        assert!(err.contains("field 'strategy'"), "{err}");
        assert!(err.contains("field 'topology'"), "{err}");
        assert!(err.contains("\"w\""), "{err}");

        // Fault plans are strict too.
        let text = r#"{
            "n": 8, "steps": 100,
            "strategy": {"kind": "async", "delta": 1, "f": 1.2},
            "workload": {"kind": "one-producer"},
            "faults": {"loss": 0.1, "crashes": [{"proc": 1, "at": 5, "rejoin": 9}]}
        }"#;
        let err = Scenario::from_json(text).unwrap_err();
        assert!(err.contains("faults"), "{err}");
        assert!(err.contains("\"rejoin\""), "{err}");
    }

    #[test]
    fn balancer_list_roundtrips_and_defaults_to_empty() {
        let mut s = Scenario::demo();
        assert!(s.balancer.is_empty());
        assert!(!s.to_json().contains("balancer"), "omitted when empty");
        s.balancer = vec![
            StrategyConfig::Quasirandom {
                topology: TopologyConfig::Hypercube { dim: 6 },
            },
            StrategyConfig::None,
        ];
        let back = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn async_cannot_enter_the_league() {
        let mut s = Scenario::demo();
        s.balancer = vec![StrategyConfig::Async {
            delta: 1,
            f: 1.1,
            latency: 4,
        }];
        assert!(s.validate().unwrap_err().contains("async"));
        // Async as the primary strategy is still fine without a league.
        let mut s = Scenario::demo();
        s.strategy = StrategyConfig::Async {
            delta: 1,
            f: 1.1,
            latency: 4,
        };
        assert!(s.validate().is_ok());
    }

    #[test]
    fn async_latency_defaults() {
        let value = Json::parse(r#"{"kind": "async", "delta": 1, "f": 1.2}"#).unwrap();
        let parsed = StrategyConfig::from_json(&value).unwrap();
        assert_eq!(
            parsed,
            StrategyConfig::Async {
                delta: 1,
                f: 1.2,
                latency: 4
            }
        );
    }

    #[test]
    fn faults_section_parses_and_roundtrips() {
        let text = r#"{
            "n": 8, "steps": 100,
            "strategy": {"kind": "async", "delta": 2, "f": 1.3},
            "workload": {"kind": "uniform", "p_gen": 0.5, "p_con": 0.3},
            "faults": {
                "loss": 0.1,
                "jitter": 2,
                "crash_mode": "frozen",
                "crashes": [{"proc": 3, "at": 50, "recover_at": 80}]
            }
        }"#;
        let s = Scenario::from_json(text).unwrap();
        let plan = s.faults.clone().expect("faults parsed");
        assert_eq!(plan.loss, 0.1);
        assert_eq!(plan.jitter, 2);
        assert_eq!(plan.crash_mode, CrashMode::Frozen);
        assert_eq!(
            plan.crashes,
            vec![CrashEvent {
                proc: 3,
                at: 50,
                recover_at: Some(80)
            }]
        );
        let back = Scenario::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }

    /// Every committed scenario file must parse under the strict
    /// (unknown-key-rejecting) loaders — `service_*.json` through the
    /// serving loader, everything else through [`Scenario`].  A stray
    /// or misspelled key in any shipped file fails here, not at a
    /// user's command line.
    #[test]
    fn every_committed_scenario_file_parses_strictly() {
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios");
        let mut seen = 0;
        for entry in std::fs::read_dir(&dir).expect("scenarios/ exists") {
            let path = entry.expect("dir entry").path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            seen += 1;
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).expect("readable scenario");
            if name.starts_with("service_") {
                dlb_serve::ServiceScenario::parse(&text)
                    .unwrap_or_else(|e| panic!("scenarios/{name}: {e}"));
            } else {
                Scenario::from_json(&text).unwrap_or_else(|e| panic!("scenarios/{name}: {e}"));
            }
        }
        assert!(seen >= 6, "expected the committed scenario set, saw {seen}");
    }
}
