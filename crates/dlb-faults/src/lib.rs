//! Seeded, fully deterministic fault injection for the load-balancing
//! substrates.
//!
//! A [`FaultPlan`] declares *what* can go wrong — message loss,
//! duplication, latency jitter, processor crashes with or without load
//! loss, recovery, and topology-aware link cuts (partitions) — and a
//! [`FaultInjector`] turns the plan into a deterministic sequence of
//! per-message [`MessageFate`] decisions driven by one seeded ChaCha
//! stream.  The same plan and the same call sequence always produce the
//! same faults, so every failure an experiment observes is reproducible
//! from `(seed, plan)` alone.
//!
//! Three substrates consume this crate:
//!
//! * `dlb-net::desim` routes every message through
//!   [`FaultInjector::on_send`] and applies crash windows during its
//!   event loop;
//! * `dlb-net::runtime` uses crash windows to kill and rejoin worker
//!   threads;
//! * the synchronous engines take a per-step crash mask from
//!   [`FaultInjector::mask_at`].
//!
//! Transfers (messages that carry load) are never duplicated — that
//! would mint packets out of thin air — and a partition *delays* them
//! until the cut heals instead of dropping them, unless the plan's
//! `transfer_loss` explicitly says transfers may die.  Lost transfers
//! must be accounted by the consumer (the desim tracks them in its
//! `lost` ledger so conservation stays checkable).

use dlb_json::{FromJson, Json, ToJson};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// What happens to a crashed processor's queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrashMode {
    /// The load held at crash time is destroyed (fail-stop with state
    /// loss).  Consumers account it in their `lost` ledger.
    #[default]
    Lost,
    /// The load is frozen in place: inert while the processor is down
    /// and available again after recovery.
    Frozen,
}

impl ToJson for CrashMode {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                CrashMode::Lost => "lost",
                CrashMode::Frozen => "frozen",
            }
            .to_string(),
        )
    }
}

impl FromJson for CrashMode {
    fn from_json(value: &Json) -> Result<Self, String> {
        match value.as_str() {
            Some("lost") => Ok(CrashMode::Lost),
            Some("frozen") => Ok(CrashMode::Frozen),
            other => Err(format!(
                "unknown crash mode {other:?} (expected \"lost\"/\"frozen\")"
            )),
        }
    }
}

/// One scheduled processor crash (and optional recovery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// The processor that crashes.
    pub proc: usize,
    /// Time (inclusive) at which the processor goes down.
    pub at: u64,
    /// Time at which it rejoins (`None` = never).  Must be `> at`.
    pub recover_at: Option<u64>,
}

impl ToJson for CrashEvent {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("proc".into(), self.proc.to_json()),
            ("at".into(), self.at.to_json()),
            ("recover_at".into(), self.recover_at.to_json()),
        ])
    }
}

impl FromJson for CrashEvent {
    fn from_json(value: &Json) -> Result<Self, String> {
        dlb_json::reject_unknown(value, &["proc", "at", "recover_at"])?;
        Ok(CrashEvent {
            proc: dlb_json::req(value, "proc")?,
            at: dlb_json::req(value, "at")?,
            recover_at: dlb_json::field_or(value, "recover_at", None)?,
        })
    }
}

/// One scheduled network partition: while `from <= now < until` every
/// message between `group` and its complement is cut.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionEvent {
    /// First time unit of the cut (inclusive).
    pub from: u64,
    /// First time unit after the cut (exclusive) — the heal time.
    pub until: u64,
    /// One side of the cut; the other side is everyone else.
    pub group: Vec<usize>,
}

impl PartitionEvent {
    /// Whether the cut is active at `now`.
    pub fn active(&self, now: u64) -> bool {
        self.from <= now && now < self.until
    }

    /// Whether the link `a — b` crosses the cut.
    pub fn cuts(&self, a: usize, b: usize) -> bool {
        self.group.contains(&a) != self.group.contains(&b)
    }
}

impl ToJson for PartitionEvent {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("from".into(), self.from.to_json()),
            ("until".into(), self.until.to_json()),
            ("group".into(), self.group.to_json()),
        ])
    }
}

impl FromJson for PartitionEvent {
    fn from_json(value: &Json) -> Result<Self, String> {
        dlb_json::reject_unknown(value, &["from", "until", "group"])?;
        Ok(PartitionEvent {
            from: dlb_json::req(value, "from")?,
            until: dlb_json::req(value, "until")?,
            group: dlb_json::req(value, "group")?,
        })
    }
}

/// A complete declarative fault schedule.  [`FaultPlan::default`] is
/// benign (injects nothing); every field can be set independently.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the fault stream (independent of the algorithm's seed).
    pub seed: u64,
    /// Probability that a control message is dropped.
    pub loss: f64,
    /// Probability that a load-carrying transfer is dropped (the load is
    /// destroyed; the consumer must ledger it).
    pub transfer_loss: f64,
    /// Probability that a control message is delivered twice.
    pub duplication: f64,
    /// Maximum extra latency added to any delivered message (uniform in
    /// `0..=jitter`, in the substrate's time units).
    pub jitter: u64,
    /// What happens to a crashed processor's load.
    pub crash_mode: CrashMode,
    /// Scheduled crashes.
    pub crashes: Vec<CrashEvent>,
    /// Scheduled partitions.
    pub partitions: Vec<PartitionEvent>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            loss: 0.0,
            transfer_loss: 0.0,
            duplication: 0.0,
            jitter: 0,
            crash_mode: CrashMode::Lost,
            crashes: Vec::new(),
            partitions: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// A plan that injects no faults at all.
    pub fn reliable() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan can never inject anything.
    pub fn is_benign(&self) -> bool {
        self.loss == 0.0
            && self.transfer_loss == 0.0
            && self.duplication == 0.0
            && self.jitter == 0
            && self.crashes.is_empty()
            && self.partitions.is_empty()
    }

    /// Validates the plan against a network of `n` processors.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        let prob = |name: &str, p: f64| {
            if (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(format!("{name} = {p} must lie in [0, 1]"))
            }
        };
        prob("loss", self.loss)?;
        prob("transfer_loss", self.transfer_loss)?;
        prob("duplication", self.duplication)?;
        for (k, c) in self.crashes.iter().enumerate() {
            if c.proc >= n {
                return Err(format!(
                    "crash #{k}: proc {} out of range (n = {n})",
                    c.proc
                ));
            }
            if let Some(r) = c.recover_at {
                if r <= c.at {
                    return Err(format!("crash #{k}: recover_at {r} must be > at {}", c.at));
                }
            }
        }
        for (k, p) in self.partitions.iter().enumerate() {
            if p.from >= p.until {
                return Err(format!(
                    "partition #{k}: from {} must be < until {}",
                    p.from, p.until
                ));
            }
            if p.group.is_empty() {
                return Err(format!("partition #{k}: group must not be empty"));
            }
            if let Some(&bad) = p.group.iter().find(|&&m| m >= n) {
                return Err(format!(
                    "partition #{k}: member {bad} out of range (n = {n})"
                ));
            }
        }
        Ok(())
    }
}

impl ToJson for FaultPlan {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("seed".into(), self.seed.to_json()),
            ("loss".into(), self.loss.to_json()),
            ("transfer_loss".into(), self.transfer_loss.to_json()),
            ("duplication".into(), self.duplication.to_json()),
            ("jitter".into(), self.jitter.to_json()),
            ("crash_mode".into(), self.crash_mode.to_json()),
            ("crashes".into(), self.crashes.to_json()),
            ("partitions".into(), self.partitions.to_json()),
        ])
    }
}

impl FromJson for FaultPlan {
    fn from_json(value: &Json) -> Result<Self, String> {
        dlb_json::reject_unknown(
            value,
            &[
                "seed",
                "loss",
                "transfer_loss",
                "duplication",
                "jitter",
                "crash_mode",
                "crashes",
                "partitions",
            ],
        )?;
        Ok(FaultPlan {
            seed: dlb_json::field_or(value, "seed", 0)?,
            loss: dlb_json::field_or(value, "loss", 0.0)?,
            transfer_loss: dlb_json::field_or(value, "transfer_loss", 0.0)?,
            duplication: dlb_json::field_or(value, "duplication", 0.0)?,
            jitter: dlb_json::field_or(value, "jitter", 0)?,
            crash_mode: dlb_json::field_or(value, "crash_mode", CrashMode::Lost)?,
            crashes: dlb_json::field_or(value, "crashes", Vec::new())?,
            partitions: dlb_json::field_or(value, "partitions", Vec::new())?,
        })
    }
}

/// The kind of message being sent, as far as faults care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageClass {
    /// Protocol control traffic (requests, replies, orders): safe to
    /// drop or duplicate — the protocol must recover.
    Control,
    /// A load-carrying transfer: never duplicated; dropped only under
    /// `transfer_loss`, and delayed (not dropped) by partitions.
    Transfer,
}

/// The injector's verdict on one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessageFate {
    /// Deliver, with `extra_delay` added to the nominal latency;
    /// `duplicate` asks the sender to enqueue a second copy.
    Deliver {
        /// Extra latency on top of the substrate's nominal latency.
        extra_delay: u64,
        /// Deliver a second copy (control messages only).
        duplicate: bool,
    },
    /// The message vanishes.
    Drop,
}

impl MessageFate {
    /// The fate of a message on a fault-free network.
    pub const CLEAN: MessageFate = MessageFate::Deliver {
        extra_delay: 0,
        duplicate: false,
    };
}

/// Counters of everything the injector actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Control messages dropped by random loss.
    pub dropped_control: u64,
    /// Transfers dropped by random loss.
    pub dropped_transfers: u64,
    /// Control messages duplicated.
    pub duplicated: u64,
    /// Messages given non-zero extra latency (jitter or partition hold).
    pub delayed: u64,
    /// Control messages cut by an active partition.
    pub partition_cuts: u64,
}

/// Executes a [`FaultPlan`] deterministically.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    n: usize,
    rng: ChaCha8Rng,
    stats: FaultStats,
    sink: Option<dlb_trace::SharedSink>,
}

impl FaultInjector {
    /// Builds an injector for a network of `n` processors.
    ///
    /// Fails if the plan does not [`FaultPlan::validate`].
    pub fn new(plan: FaultPlan, n: usize) -> Result<Self, String> {
        plan.validate(n)?;
        let rng = ChaCha8Rng::seed_from_u64(plan.seed);
        Ok(FaultInjector {
            plan,
            n,
            rng,
            stats: FaultStats::default(),
            sink: None,
        })
    }

    /// Attaches a trace sink; every message-level fault the injector
    /// fires is then emitted as a `FaultInjected` event (crash windows
    /// are emitted by the substrate that applies them, which knows the
    /// logical clock the crash lands on).
    pub fn set_trace_sink(&mut self, sink: dlb_trace::SharedSink) {
        self.sink = Some(sink);
    }

    fn emit_fault(&self, now: u64, proc: usize, kind: &str) {
        if let Some(sink) = &self.sink {
            if sink.enabled() {
                sink.record(&dlb_trace::TraceEvent::FaultInjected {
                    step: now,
                    proc: proc as u64,
                    kind: kind.to_string(),
                });
            }
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Network size the injector was built for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// What the injector has done so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The configured crash mode.
    pub fn crash_mode(&self) -> CrashMode {
        self.plan.crash_mode
    }

    /// The scheduled crashes (consumers that need recovery times scan
    /// this directly).
    pub fn crashes(&self) -> &[CrashEvent] {
        &self.plan.crashes
    }

    /// Whether processor `p` is down at time `now`.
    pub fn is_down(&self, now: u64, p: usize) -> bool {
        self.plan
            .crashes
            .iter()
            .any(|c| c.proc == p && c.at <= now && c.recover_at.is_none_or(|r| now < r))
    }

    /// Per-processor crash mask at time `now` (`true` = down), for the
    /// synchronous engines' `step_masked`.
    pub fn mask_at(&self, now: u64) -> Vec<bool> {
        (0..self.n).map(|p| self.is_down(now, p)).collect()
    }

    /// If the link `from — to` crosses an active partition at `now`,
    /// returns the latest heal time among the cutting partitions.
    pub fn cut_until(&self, now: u64, from: usize, to: usize) -> Option<u64> {
        self.plan
            .partitions
            .iter()
            .filter(|p| p.active(now) && p.cuts(from, to))
            .map(|p| p.until)
            .max()
    }

    fn jitter_draw(&mut self) -> u64 {
        if self.plan.jitter > 0 {
            self.rng.gen_range(0..=self.plan.jitter)
        } else {
            0
        }
    }

    /// Decides the fate of one message.  Consumes randomness, so the
    /// caller must invoke it in a deterministic order.
    pub fn on_send(
        &mut self,
        now: u64,
        from: usize,
        to: usize,
        class: MessageClass,
    ) -> MessageFate {
        // Partitions first: a cut link drops control outright and holds
        // transfers (conserving) until the cut heals.
        if let Some(heal) = self.cut_until(now, from, to) {
            match class {
                MessageClass::Control => {
                    self.stats.partition_cuts += 1;
                    self.emit_fault(now, to, "partition");
                    return MessageFate::Drop;
                }
                MessageClass::Transfer => {
                    let extra = heal.saturating_sub(now) + self.jitter_draw();
                    self.stats.delayed += 1;
                    return MessageFate::Deliver {
                        extra_delay: extra,
                        duplicate: false,
                    };
                }
            }
        }
        let loss = match class {
            MessageClass::Control => self.plan.loss,
            MessageClass::Transfer => self.plan.transfer_loss,
        };
        if loss > 0.0 && self.rng.gen_bool(loss) {
            match class {
                MessageClass::Control => {
                    self.stats.dropped_control += 1;
                    self.emit_fault(now, to, "loss");
                }
                MessageClass::Transfer => {
                    self.stats.dropped_transfers += 1;
                    self.emit_fault(now, to, "transfer_loss");
                }
            }
            return MessageFate::Drop;
        }
        let duplicate = class == MessageClass::Control
            && self.plan.duplication > 0.0
            && self.rng.gen_bool(self.plan.duplication);
        if duplicate {
            self.stats.duplicated += 1;
            self.emit_fault(now, to, "duplicate");
        }
        let extra_delay = self.jitter_draw();
        if extra_delay > 0 {
            self.stats.delayed += 1;
        }
        MessageFate::Deliver {
            extra_delay,
            duplicate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn crash(proc: usize, at: u64, recover_at: Option<u64>) -> CrashEvent {
        CrashEvent {
            proc,
            at,
            recover_at,
        }
    }

    #[test]
    fn default_plan_is_benign_and_injects_nothing() {
        let plan = FaultPlan::reliable();
        assert!(plan.is_benign());
        let mut inj = FaultInjector::new(plan, 8).unwrap();
        for t in 0..500u64 {
            let fate = inj.on_send(t, (t % 8) as usize, ((t + 3) % 8) as usize, {
                if t % 2 == 0 {
                    MessageClass::Control
                } else {
                    MessageClass::Transfer
                }
            });
            assert_eq!(fate, MessageFate::CLEAN);
        }
        assert_eq!(inj.stats(), FaultStats::default());
        assert!(inj.mask_at(100).iter().all(|&d| !d));
    }

    #[test]
    fn json_round_trip_and_defaults() {
        let plan = FaultPlan {
            seed: 9,
            loss: 0.25,
            transfer_loss: 0.01,
            duplication: 0.1,
            jitter: 7,
            crash_mode: CrashMode::Frozen,
            crashes: vec![crash(2, 100, Some(300)), crash(5, 50, None)],
            partitions: vec![PartitionEvent {
                from: 10,
                until: 40,
                group: vec![0, 1],
            }],
        };
        let text = plan.to_json().render();
        let back = FaultPlan::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, plan);

        let empty = FaultPlan::from_json(&Json::parse("{}").unwrap()).unwrap();
        assert_eq!(empty, FaultPlan::default());
        assert!(empty.is_benign());
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let mut plan = FaultPlan {
            loss: 1.5,
            ..FaultPlan::default()
        };
        assert!(plan.validate(4).is_err());
        plan.loss = 0.0;
        plan.crashes = vec![crash(4, 0, None)];
        assert!(plan.validate(4).is_err(), "proc out of range");
        plan.crashes = vec![crash(1, 10, Some(10))];
        assert!(plan.validate(4).is_err(), "recovery not after crash");
        plan.crashes.clear();
        plan.partitions = vec![PartitionEvent {
            from: 5,
            until: 5,
            group: vec![0],
        }];
        assert!(plan.validate(4).is_err(), "empty partition window");
        plan.partitions = vec![PartitionEvent {
            from: 0,
            until: 5,
            group: vec![9],
        }];
        assert!(plan.validate(4).is_err(), "partition member out of range");
        plan.partitions = vec![PartitionEvent {
            from: 0,
            until: 5,
            group: vec![],
        }];
        assert!(plan.validate(4).is_err(), "empty group");
    }

    #[test]
    fn loss_rate_is_close_to_configured() {
        let plan = FaultPlan {
            seed: 1,
            loss: 0.3,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan, 4).unwrap();
        let drops = (0..10_000)
            .filter(|&k| inj.on_send(k, 0, 1, MessageClass::Control) == MessageFate::Drop)
            .count();
        let rate = drops as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "drop rate {rate}");
        assert_eq!(inj.stats().dropped_control, drops as u64);
        // Transfers are untouched by control loss.
        assert_eq!(
            inj.on_send(0, 0, 1, MessageClass::Transfer),
            MessageFate::CLEAN
        );
    }

    #[test]
    fn fates_are_deterministic_per_seed() {
        let plan = FaultPlan {
            seed: 77,
            loss: 0.2,
            duplication: 0.1,
            jitter: 5,
            ..FaultPlan::default()
        };
        let run = |plan: FaultPlan| {
            let mut inj = FaultInjector::new(plan, 6).unwrap();
            (0..1_000u64)
                .map(|t| {
                    inj.on_send(
                        t,
                        (t % 6) as usize,
                        ((t + 1) % 6) as usize,
                        MessageClass::Control,
                    )
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(plan.clone()), run(plan.clone()));
        let other = FaultPlan { seed: 78, ..plan };
        assert_ne!(
            run(other.clone()),
            run(other.clone()).into_iter().rev().collect::<Vec<_>>()
        );
    }

    #[test]
    fn crash_windows_and_mask() {
        let plan = FaultPlan {
            crashes: vec![crash(1, 10, Some(20)), crash(3, 15, None)],
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan, 4).unwrap();
        assert!(!inj.is_down(9, 1));
        assert!(inj.is_down(10, 1));
        assert!(inj.is_down(19, 1));
        assert!(!inj.is_down(20, 1), "recovered");
        assert!(inj.is_down(1_000_000, 3), "never recovers");
        assert_eq!(inj.mask_at(16), vec![false, true, false, true]);
        assert_eq!(inj.mask_at(25), vec![false, false, false, true]);
    }

    #[test]
    fn partitions_cut_control_and_hold_transfers() {
        let plan = FaultPlan {
            partitions: vec![PartitionEvent {
                from: 100,
                until: 200,
                group: vec![0, 1],
            }],
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan, 4).unwrap();
        // Outside the window: clean.
        assert_eq!(
            inj.on_send(50, 0, 2, MessageClass::Control),
            MessageFate::CLEAN
        );
        assert_eq!(
            inj.on_send(200, 0, 2, MessageClass::Control),
            MessageFate::CLEAN
        );
        // Inside the window, across the cut: control dies …
        assert_eq!(
            inj.on_send(150, 0, 2, MessageClass::Control),
            MessageFate::Drop
        );
        // … transfers are held until the heal time.
        assert_eq!(
            inj.on_send(150, 2, 1, MessageClass::Transfer),
            MessageFate::Deliver {
                extra_delay: 50,
                duplicate: false
            }
        );
        // Inside the window, same side: clean.
        assert_eq!(
            inj.on_send(150, 0, 1, MessageClass::Control),
            MessageFate::CLEAN
        );
        assert_eq!(
            inj.on_send(150, 2, 3, MessageClass::Control),
            MessageFate::CLEAN
        );
        assert_eq!(inj.stats().partition_cuts, 1);
        assert_eq!(inj.stats().delayed, 1);
    }

    #[test]
    fn duplication_only_touches_control() {
        let plan = FaultPlan {
            seed: 3,
            duplication: 1.0,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan, 2).unwrap();
        assert_eq!(
            inj.on_send(0, 0, 1, MessageClass::Control),
            MessageFate::Deliver {
                extra_delay: 0,
                duplicate: true
            }
        );
        assert_eq!(
            inj.on_send(0, 0, 1, MessageClass::Transfer),
            MessageFate::CLEAN
        );
        assert_eq!(inj.stats().duplicated, 1);
    }
}
