//! Properties of the latency recorder that the serving report relies
//! on:
//!
//! 1. **Merge is order-independent and lossless** — per-worker
//!    histograms folded together in *any* order equal one global
//!    recorder fed all samples, so the report cannot depend on which
//!    worker finished first or on how requests were sharded.
//! 2. **Quantiles respect the bucket error bound** — any reported
//!    quantile is within a `1/SUB_BUCKETS` relative error of the true
//!    order statistic (exact below `SUB_BUCKETS`).
//! 3. **`quantile` is a sane quantile function** — monotone in `q`,
//!    `quantile(1.0)` lands in the max sample's bucket, and the
//!    `ceil(q · count) as u64` rank cast behaves exactly at integer
//!    boundaries of `q · count` (where an off-by-one would silently
//!    shift every reported percentile).

use dlb_serve::hist::{bucket_of, LatencyHistogram, SUB_BUCKETS};
use proptest::{prop_assert, prop_assert_eq, proptest};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Deterministic sample set with a heavy tail (spans many octaves).
fn samples(seed: u64, len: usize) -> Vec<u64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let octave = rng.gen_range(0u32..40);
            rng.gen_range(0..=(1u64 << octave))
        })
        .collect()
}

proptest! {
    #[test]
    fn merge_is_order_independent_and_equals_a_global_recorder(
        seed in 0u64..1_000_000,
        len in 1usize..400,
        parts in 1usize..8,
    ) {
        let values = samples(seed, len);
        let mut global = LatencyHistogram::new();
        for &v in &values {
            global.record(v);
        }

        // Shard round-robin over `parts` workers.
        let mut workers = vec![LatencyHistogram::new(); parts];
        for (i, &v) in values.iter().enumerate() {
            workers[i % parts].record(v);
        }

        // Fold in index order…
        let mut forward = LatencyHistogram::new();
        for w in &workers {
            forward.merge(w);
        }
        // …and in reverse order.
        let mut backward = LatencyHistogram::new();
        for w in workers.iter().rev() {
            backward.merge(w);
        }

        prop_assert_eq!(&forward, &global);
        prop_assert_eq!(&backward, &global);
        prop_assert_eq!(forward.count(), len as u64);
        // Derived figures agree too (they only read merged state).
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(forward.quantile(q), global.quantile(q));
        }
    }

    #[test]
    fn quantiles_respect_the_bucket_error_bound(
        seed in 0u64..1_000_000,
        len in 1usize..400,
        q_mil in 1u64..=1000,
    ) {
        let q = q_mil as f64 / 1000.0;
        let mut values = samples(seed, len);
        let mut hist = LatencyHistogram::new();
        for &v in &values {
            hist.record(v);
        }
        values.sort_unstable();
        let rank = ((q * len as f64).ceil() as usize).clamp(1, len);
        let exact = values[rank - 1];
        let got = hist.quantile(q);
        if exact < SUB_BUCKETS {
            prop_assert_eq!(got, exact, "small samples are bucketed exactly");
        } else {
            let err = got.abs_diff(exact);
            prop_assert!(
                err.saturating_mul(SUB_BUCKETS) <= exact,
                "quantile {q}: got {got}, exact {exact}, relative error > 1/{SUB_BUCKETS}"
            );
        }
        prop_assert!(got <= hist.max(), "quantiles never exceed the observed max");
    }

    #[test]
    fn quantile_is_monotone_in_q(
        seed in 0u64..1_000_000,
        len in 1usize..400,
        a_mil in 1u64..=1000,
        b_mil in 1u64..=1000,
    ) {
        let mut hist = LatencyHistogram::new();
        for v in samples(seed, len) {
            hist.record(v);
        }
        let (lo, hi) = (a_mil.min(b_mil), a_mil.max(b_mil));
        prop_assert!(
            hist.quantile(lo as f64 / 1000.0) <= hist.quantile(hi as f64 / 1000.0),
            "q={} must not report above q={}", lo, hi
        );
    }

    #[test]
    fn quantile_one_lands_in_the_max_samples_bucket(
        seed in 0u64..1_000_000,
        len in 1usize..400,
    ) {
        let mut hist = LatencyHistogram::new();
        for v in samples(seed, len) {
            hist.record(v);
        }
        // rank = count reaches the last non-empty bucket, which is the
        // max sample's bucket; the midpoint is clamped to the exact max
        // but can never leave the bucket (the max is inside it).
        prop_assert_eq!(bucket_of(hist.quantile(1.0)), bucket_of(hist.max()));
        prop_assert!(hist.quantile(1.0) <= hist.max());
    }

    #[test]
    fn rank_cast_is_exact_at_integer_boundaries(count_log in 0u32..=5) {
        // `count` samples 0..count with count a power of two ≤ 32: every
        // value is bucketed exactly, and every q = j/count is exactly
        // representable in binary floating point — so `q · count` hits
        // the integer `j` with no rounding slack and the `ceil() as
        // u64` cast at the rank computation is exercised exactly *at*
        // the boundary (rank j → sample j-1) and just past it
        // (q = (2j+1)/2count → rank j+1 → sample j).
        let count = 1u64 << count_log; // ≤ SUB_BUCKETS, so buckets are exact
        let mut hist = LatencyHistogram::new();
        for v in 0..count {
            hist.record(v);
        }
        for j in 1..=count {
            let at = j as f64 / count as f64;
            prop_assert_eq!(
                hist.quantile(at),
                j - 1,
                "rank ceil({} · {}) must select sample {}", at, count, j - 1
            );
            if j < count {
                let past = (2 * j + 1) as f64 / (2 * count) as f64;
                prop_assert_eq!(
                    hist.quantile(past),
                    j,
                    "rank ceil({} · {}) must round up to sample {}", past, count, j
                );
            }
        }
        // q small enough that ceil(q·count) < 1 still clamps to rank 1.
        prop_assert_eq!(hist.quantile(1e-12), 0);
    }
}
