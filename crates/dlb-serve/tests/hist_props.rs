//! Properties of the latency recorder that the serving report relies
//! on:
//!
//! 1. **Merge is order-independent and lossless** — per-worker
//!    histograms folded together in *any* order equal one global
//!    recorder fed all samples, so the report cannot depend on which
//!    worker finished first or on how requests were sharded.
//! 2. **Quantiles respect the bucket error bound** — any reported
//!    quantile is within a `1/SUB_BUCKETS` relative error of the true
//!    order statistic (exact below `SUB_BUCKETS`).

use dlb_serve::hist::{LatencyHistogram, SUB_BUCKETS};
use proptest::{prop_assert, prop_assert_eq, proptest};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Deterministic sample set with a heavy tail (spans many octaves).
fn samples(seed: u64, len: usize) -> Vec<u64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let octave = rng.gen_range(0u32..40);
            rng.gen_range(0..=(1u64 << octave))
        })
        .collect()
}

proptest! {
    #[test]
    fn merge_is_order_independent_and_equals_a_global_recorder(
        seed in 0u64..1_000_000,
        len in 1usize..400,
        parts in 1usize..8,
    ) {
        let values = samples(seed, len);
        let mut global = LatencyHistogram::new();
        for &v in &values {
            global.record(v);
        }

        // Shard round-robin over `parts` workers.
        let mut workers = vec![LatencyHistogram::new(); parts];
        for (i, &v) in values.iter().enumerate() {
            workers[i % parts].record(v);
        }

        // Fold in index order…
        let mut forward = LatencyHistogram::new();
        for w in &workers {
            forward.merge(w);
        }
        // …and in reverse order.
        let mut backward = LatencyHistogram::new();
        for w in workers.iter().rev() {
            backward.merge(w);
        }

        prop_assert_eq!(&forward, &global);
        prop_assert_eq!(&backward, &global);
        prop_assert_eq!(forward.count(), len as u64);
        // Derived figures agree too (they only read merged state).
        for q in [0.5, 0.9, 0.99, 0.999, 1.0] {
            prop_assert_eq!(forward.quantile(q), global.quantile(q));
        }
    }

    #[test]
    fn quantiles_respect_the_bucket_error_bound(
        seed in 0u64..1_000_000,
        len in 1usize..400,
        q_mil in 1u64..=1000,
    ) {
        let q = q_mil as f64 / 1000.0;
        let mut values = samples(seed, len);
        let mut hist = LatencyHistogram::new();
        for &v in &values {
            hist.record(v);
        }
        values.sort_unstable();
        let rank = ((q * len as f64).ceil() as usize).clamp(1, len);
        let exact = values[rank - 1];
        let got = hist.quantile(q);
        if exact < SUB_BUCKETS {
            prop_assert_eq!(got, exact, "small samples are bucketed exactly");
        } else {
            let err = got.abs_diff(exact);
            prop_assert!(
                err.saturating_mul(SUB_BUCKETS) <= exact,
                "quantile {q}: got {got}, exact {exact}, relative error > 1/{SUB_BUCKETS}"
            );
        }
        prop_assert!(got <= hist.max(), "quantiles never exceed the observed max");
    }
}
