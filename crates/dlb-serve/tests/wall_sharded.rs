//! End-to-end tests of the sharded wall engine: the conservation
//! ledger must close exactly for every acceptor count, the fault plan
//! must be honoured wherever its ticks fall, and sim and wall mode
//! must agree on every key's home shard.

use dlb_faults::{CrashEvent, CrashMode, FaultPlan};
use dlb_serve::{home_shard, run_wall, ServiceScenario, TriggerRouter};
use dlb_trace::{BufferSink, TraceEvent};
use dlb_workload::service::{RatePhase, ServiceLoad};

/// A few milliseconds of wall schedule: 8 shards, a Zipf-skewed burst
/// (so triggers actually fire), and a crash/rejoin pair per half.
fn scenario() -> ServiceScenario {
    ServiceScenario {
        shards: 8,
        ticks: 400,
        seed: 42,
        delta: 2,
        f: 2.0,
        acceptors: 1,
        load: ServiceLoad {
            phases: vec![RatePhase {
                ticks: 120,
                rate: 2.5,
            }],
            keys: 200,
            zipf_s: 1.1,
            service_ticks: (1, 2),
        },
        tick_us: 20,
        faults: FaultPlan {
            crash_mode: CrashMode::Lost,
            crashes: vec![
                CrashEvent {
                    proc: 3,
                    at: 60,
                    recover_at: Some(200),
                },
                CrashEvent {
                    proc: 6,
                    at: 90,
                    recover_at: Some(260),
                },
            ],
            ..FaultPlan::reliable()
        },
    }
}

#[test]
fn ledger_closes_for_every_acceptor_count() {
    for acceptors in [1usize, 2, 4] {
        let stats = run_wall(&scenario(), 2, acceptors, None)
            .unwrap_or_else(|e| panic!("acceptors={acceptors}: {e}"));
        assert_eq!(stats.acceptors, acceptors);
        assert!(stats.issued > 0);
        assert!(
            stats.conservation_holds(),
            "acceptors={acceptors}: ledger must close at exit"
        );
        // Wall-mode crashes only redistribute queued work, so with at
        // least one shard alive everything completes.
        assert_eq!(stats.completed, stats.issued, "acceptors={acceptors}");
        assert_eq!(stats.dropped, 0, "acceptors={acceptors}");
        assert_eq!(stats.in_flight, 0, "acceptors={acceptors}");
        assert_eq!(stats.crashes, 2, "acceptors={acceptors}");
        assert_eq!(stats.recoveries, 2, "acceptors={acceptors}");
        assert_eq!(stats.latency.count(), stats.completed);
        assert_eq!(
            stats.per_shard_completed.iter().sum::<u64>(),
            stats.completed
        );
        assert_eq!(stats.per_acceptor_rebalances.len(), acceptors);
        assert_eq!(
            stats.per_acceptor_rebalances.iter().sum::<u64>(),
            stats.rebalances,
            "per-acceptor rebalances must sum to the total"
        );
        if acceptors == 1 {
            assert_eq!(
                stats.handoffs, 0,
                "a single acceptor owns every shard; nothing crosses a group"
            );
        }
    }
}

#[test]
fn wall_trace_is_consistent_with_the_stats_under_sharding() {
    let buffer = BufferSink::new();
    let stats = run_wall(&scenario(), 2, 4, Some(buffer.handle())).expect("run");
    let events = buffer.take();
    let routed = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::RequestRouted { .. }))
        .count() as u64;
    let done = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::RequestCompleted { .. }))
        .count() as u64;
    let redirected: u64 = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::RequestsRedirected { count, .. } => Some(*count),
            _ => None,
        })
        .sum();
    let handoff_events = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::AcceptorHandoff { .. }))
        .count() as u64;
    assert_eq!(
        routed,
        stats.issued - stats.dropped,
        "every surviving request is traced as routed exactly once, at its landing"
    );
    assert_eq!(done, stats.completed);
    assert_eq!(
        redirected, stats.redirected,
        "redirect trace counts sum to the stats counter"
    );
    assert!(
        handoff_events <= stats.handoffs,
        "handoff events cover donations only; the counter covers every message"
    );
    if stats.rebalances > 0 {
        // With 8 shards in 4 groups of 2, any δ=2 trigger has at most
        // one own-group partner, so every fired rebalance donates (or
        // baseline-resets) across a group boundary.
        assert!(
            stats.handoffs > 0,
            "cross-group rebalance must ride the inboxes"
        );
    }
}

#[test]
fn sim_and_wall_agree_on_every_keys_home_shard() {
    for n in [1usize, 2, 3, 8, 64] {
        let router = TriggerRouter::new(n.max(2), 1, 1.5, 0).expect("params");
        for key in (0..2_000u64).chain([u64::MAX, u64::MAX - 1, 1 << 60]) {
            // The router (sim placement) and the crate-level hash (wall
            // placement) must be the same function.
            if n >= 2 {
                assert_eq!(
                    router.home_shard(key),
                    home_shard(key, n.max(2)),
                    "key {key} placed differently by sim vs wall at n={n}"
                );
            }
            assert!(home_shard(key, n) < n, "home must be a valid shard");
        }
    }
}
