//! A sharded acceptor: one of `A` placement threads, each owning a
//! contiguous shard group with its *own* trigger state.
//!
//! The paper's algorithm is fully distributed — every processor runs
//! its own `f`-trigger — and this module partitions that machinery the
//! same way: acceptor `a` owns shards `[a·n/A, (a+1)·n/A)`, keeps their
//! `l_old` baselines and backlogs privately, and draws balance partners
//! from its own ChaCha stream (split per acceptor with the
//! `stream_seed` discipline from `dlb-experiments::parallel`).
//!
//! Nothing an acceptor does ever takes a lock or blocks on a peer:
//!
//! - requests for *owned* shards go straight into the private backlog
//!   (and from there into the shard's SPSC work ring);
//! - anything crossing a group boundary — a placement whose home lives
//!   elsewhere, a rebalance donation, a crash-redistributed orphan —
//!   becomes a [`Msg`] pushed onto the destination acceptor's MPSC
//!   inbox.  A full inbox parks the message in the sender's local
//!   `pending_out` queue (retried every loop pass), so a send can never
//!   deadlock two acceptors against each other.
//!
//! Cross-group rebalance is *plan handoff, not remote locking*: the
//! initiator snapshots depths (the shared atomic mirrors), computes
//! even-share targets, and sends each remote member's owner a
//! [`DonatePlan`].  The owner pops from its own backlog, ships the
//! requests, and resets the member's `l_old` to the plan's target —
//! exactly the baseline discipline the paper's trigger requires, with
//! the owner the only writer of its own state.
//!
//! Conservation: a request leaves an acceptor only by (a) entering a
//! work ring, (b) being counted `dropped` when no shard is alive, or
//! (c) riding a message whose in-flight count is incremented *before*
//! the send and decremented only *after* the receiver fully processed
//! it (including any cascaded sends).  Acceptors exit when production
//! is done everywhere, no messages are in flight and their backlogs
//! have drained — so `issued == completed + dropped` holds exactly at
//! `run_wall` exit.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use dlb_core::balance::even_shares;
use dlb_core::Params;
use dlb_trace::{SharedSink, TraceEvent};
use dlb_workload::service::Request;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use crate::home_shard;
use crate::wall::{ticks_to_duration, Shared};

/// A scheduled crash or recovery, replayed against the wall clock.
#[derive(Clone)]
pub(crate) enum Transition {
    Down,
    Up,
}

/// Cross-acceptor messages.  Everything that crosses a group boundary
/// rides one of these through the destination's MPSC inbox.
pub(crate) enum Msg {
    /// A request bound for `shard` (owned by the receiver).  `routed`
    /// distinguishes first placement (traced as `req`, runs the trigger
    /// at landing) from a rebalance/crash move (already accounted by
    /// the mover; enqueue only).
    Deliver {
        shard: usize,
        req: Request,
        routed: bool,
    },
    /// A rebalance plan for one remote member of a fired trigger; the
    /// owning acceptor applies it against its own backlog.  Boxed to
    /// keep the message word-sized in the ring.
    Donate(Box<DonatePlan>),
}

/// What a trigger initiator asks a remote member's owner to do.
pub(crate) struct DonatePlan {
    /// The member shard this plan concerns (owned by the receiver).
    pub shard: usize,
    /// The member's even-share target; becomes its new `l_old`
    /// baseline whether or not it donated anything.
    pub target: u64,
    /// `(destination shard, count)` transfers to pop from `shard`'s
    /// backlog — empty for receivers/neutral members, which get a plan
    /// purely for the baseline reset.
    pub transfers: Vec<(usize, u64)>,
}

/// Per-acceptor counters, merged by `run_wall` after the join.
#[derive(Default)]
pub(crate) struct AcceptorOut {
    pub rebalances: u64,
    pub redirected: u64,
    pub crashes: u64,
    pub recoveries: u64,
    pub handoffs: u64,
}

/// One SplitMix64 finalisation step.
fn splitmix(state: u64) -> u64 {
    let mut x = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Per-acceptor ChaCha stream seed: chained SplitMix64 finalisers (the
/// `stream_seed` discipline from `dlb-experiments::parallel`), so
/// adjacent acceptor ids land on uncorrelated 64-bit seeds and no
/// acceptor shares the partner-draw stream of another.
fn acceptor_stream_seed(base: u64, acceptor: u64) -> u64 {
    splitmix(splitmix(base ^ 0x5e_55_1d_b5).wrapping_add(acceptor))
}

pub(crate) struct Acceptor<'a> {
    id: usize,
    shared: &'a Shared,
    params: Params,
    /// First owned shard (inclusive).
    lo: usize,
    /// Past-the-end owned shard.
    hi: usize,
    /// Owner-private queues, indexed `shard - lo`; the shard's SPSC
    /// work ring is refilled from here, FIFO.
    backlog: Vec<VecDeque<Request>>,
    /// Trigger baselines for owned shards, indexed `shard - lo`.
    l_old: Vec<u64>,
    rng: ChaCha8Rng,
    sink: Option<&'a SharedSink>,
    start: Instant,
    tick_us: u64,
    /// Messages that found a full inbox, retried in order every pass.
    pending_out: VecDeque<(usize, Msg)>,
    out: AcceptorOut,
}

impl<'a> Acceptor<'a> {
    pub(crate) fn new(
        id: usize,
        shared: &'a Shared,
        params: Params,
        seed: u64,
        sink: Option<&'a SharedSink>,
        start: Instant,
        tick_us: u64,
    ) -> Self {
        let (lo, hi) = shared.group(id);
        Acceptor {
            id,
            shared,
            params,
            lo,
            hi,
            backlog: vec![VecDeque::new(); hi - lo],
            l_old: vec![0; hi - lo],
            rng: ChaCha8Rng::seed_from_u64(acceptor_stream_seed(seed, id as u64)),
            sink,
            start,
            tick_us,
            pending_out: VecDeque::new(),
            out: AcceptorOut::default(),
        }
    }

    fn n(&self) -> usize {
        self.shared.depths.len()
    }

    fn alive(&self, s: usize) -> bool {
        !self.shared.down[s].load(Ordering::Acquire)
    }

    fn owns(&self, s: usize) -> bool {
        (self.lo..self.hi).contains(&s)
    }

    fn now_ticks(&self) -> u64 {
        (self.start.elapsed().as_micros() / self.tick_us as u128) as u64
    }

    fn trace(&self, build: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = self.sink {
            if sink.enabled() {
                sink.record(&build());
            }
        }
    }

    /// Enqueues onto an owned shard's backlog, mirroring the depth.
    fn enqueue_local(&mut self, s: usize, r: Request, routed: bool) {
        debug_assert!(self.owns(s));
        self.backlog[s - self.lo].push_back(r);
        self.shared.depths[s].fetch_add(1, Ordering::Release);
        if routed {
            self.trace(|| TraceEvent::RequestRouted {
                step: r.arrival,
                req: r.id,
                shard: s as u64,
            });
        }
    }

    /// Sends `msg` to a peer acceptor without ever blocking: the
    /// in-flight count goes up *before* the push (the termination
    /// protocol's invariant), and a full inbox parks the message
    /// locally for retry.
    fn send(&mut self, dest: usize, msg: Msg, now: u64) {
        self.shared.msgs_in_flight.fetch_add(1, Ordering::SeqCst);
        self.out.handoffs += 1;
        if let Msg::Donate(plan) = &msg {
            let count = plan.transfers.iter().map(|&(_, c)| c).sum();
            self.trace(|| TraceEvent::AcceptorHandoff {
                step: now,
                from: self.id as u64,
                to: dest as u64,
                count,
            });
        }
        if let Err(back) = self.shared.inboxes[dest].try_push(msg) {
            self.pending_out.push_back((dest, back));
        }
    }

    /// Lands `r` on the first alive shard scanning from `s`: owned →
    /// backlog (running the trigger when this is a first placement),
    /// remote → `Deliver` message.  No shard alive → dropped.
    fn deliver_or_forward(&mut self, s: usize, r: Request, routed: bool, now: u64) {
        let n = self.n();
        for k in 0..n {
            let cand = (s + k) % n;
            if !self.alive(cand) {
                continue;
            }
            if self.owns(cand) {
                self.enqueue_local(cand, r, routed);
                if routed {
                    self.maybe_trigger(cand, now);
                }
            } else {
                self.send(
                    self.shared.owner[cand],
                    Msg::Deliver {
                        shard: cand,
                        req: r,
                        routed,
                    },
                    now,
                );
            }
            return;
        }
        self.shared.dropped.fetch_add(1, Ordering::Release);
    }

    fn place_arrival(&mut self, r: Request, now: u64) {
        self.deliver_or_forward(home_shard(r.key, self.n()), r, true, now);
    }

    /// The paper's grow/shrink trigger for an owned shard; fires a
    /// rebalance with `δ` random alive partners drawn from this
    /// acceptor's private stream.
    fn maybe_trigger(&mut self, s: usize, now: u64) {
        let depth = self.shared.depths[s].load(Ordering::Acquire);
        let l_old = self.l_old[s - self.lo];
        if !self.params.grow_triggered(depth, l_old) && !self.params.shrink_triggered(depth, l_old)
        {
            return;
        }
        let mut peers: Vec<usize> = (0..self.n()).filter(|&p| p != s && self.alive(p)).collect();
        let want = self.params.delta().min(peers.len());
        if want == 0 {
            self.l_old[s - self.lo] = depth;
            return;
        }
        for k in 0..want {
            let j = self.rng.gen_range(k..peers.len());
            peers.swap(k, j);
        }
        let mut members = Vec::with_capacity(want + 1);
        members.push(s);
        members.extend_from_slice(&peers[..want]);
        self.rebalance(&members, now);
    }

    /// Equalises `members` toward even-share targets.  Depths are read
    /// from the shared atomic mirrors (racing workers may drain under
    /// us, so targets are best-effort — but nothing is ever lost);
    /// moves out of *owned* members apply immediately, moves out of
    /// remote members become [`DonatePlan`] handoffs to their owner.
    /// Every remote member gets a plan — donors with transfers,
    /// receivers and neutral members an empty one — so each owner
    /// resets the member's `l_old` baseline exactly as the paper's
    /// trigger demands.
    fn rebalance(&mut self, members: &[usize], now: u64) {
        let lens: Vec<u64> = members
            .iter()
            .map(|&m| self.shared.depths[m].load(Ordering::Acquire))
            .collect();
        let total: u64 = lens.iter().sum();
        let targets = even_shares(total, members.len());
        // Surpluses flow to deficits greedily; member indices keep the
        // mapping back to shards.
        let mut donors: Vec<(usize, u64)> = Vec::new();
        let mut receivers: Vec<(usize, u64)> = Vec::new();
        for (i, (&len, &target)) in lens.iter().zip(&targets).enumerate() {
            if len > target {
                donors.push((i, len - target));
            } else if len < target {
                receivers.push((i, target - len));
            }
        }
        let mut moves: Vec<(usize, usize, u64)> = Vec::new();
        let (mut di, mut ri) = (0, 0);
        while di < donors.len() && ri < receivers.len() {
            let take = donors[di].1.min(receivers[ri].1);
            if take > 0 {
                moves.push((donors[di].0, receivers[ri].0, take));
            }
            donors[di].1 -= take;
            receivers[ri].1 -= take;
            if donors[di].1 == 0 {
                di += 1;
            }
            if ri < receivers.len() && receivers[ri].1 == 0 {
                ri += 1;
            }
        }
        for (mi, &m) in members.iter().enumerate() {
            let member_moves: Vec<(usize, u64)> = moves
                .iter()
                .filter(|&&(from, _, _)| from == mi)
                .map(|&(_, to, count)| (members[to], count))
                .collect();
            if self.owns(m) {
                self.apply_transfers(m, &member_moves, now);
                self.l_old[m - self.lo] = targets[mi];
            } else {
                self.send(
                    self.shared.owner[m],
                    Msg::Donate(Box::new(DonatePlan {
                        shard: m,
                        target: targets[mi],
                        transfers: member_moves,
                    })),
                    now,
                );
            }
        }
        self.out.rebalances += 1;
    }

    /// Pops up to the planned counts from an owned donor's backlog and
    /// ships them.  The backlog may have fewer than the snapshot
    /// promised (workers drained it); whatever is popped lands
    /// somewhere, so conservation never depends on the plan being
    /// exact.
    fn apply_transfers(&mut self, from: usize, transfers: &[(usize, u64)], now: u64) {
        debug_assert!(self.owns(from));
        for &(to, count) in transfers {
            let mut moved = 0u64;
            for _ in 0..count {
                let Some(r) = self.backlog[from - self.lo].pop_back() else {
                    break;
                };
                self.shared.depths[from].fetch_sub(1, Ordering::Release);
                self.deliver_or_forward(to, r, false, now);
                moved += 1;
            }
            if moved > 0 {
                self.out.redirected += moved;
                self.trace(|| TraceEvent::RequestsRedirected {
                    step: now,
                    from: from as u64,
                    to: to as u64,
                    count: moved,
                });
            }
        }
    }

    fn apply_donate(&mut self, plan: &DonatePlan, now: u64) {
        debug_assert!(self.owns(plan.shard));
        // A shard that crashed since the plan was cut has nothing to
        // donate, and its baseline resets at recovery anyway.
        if !self.alive(plan.shard) {
            return;
        }
        self.apply_transfers(plan.shard, &plan.transfers, now);
        self.l_old[plan.shard - self.lo] = plan.target;
    }

    fn crash(&mut self, s: usize, now: u64) {
        self.shared.down[s].store(true, Ordering::Release);
        self.out.crashes += 1;
        self.trace(|| TraceEvent::FaultInjected {
            step: now,
            proc: s as u64,
            kind: "crash".into(),
        });
        let orphans = std::mem::take(&mut self.backlog[s - self.lo]);
        self.shared.depths[s].fetch_sub(orphans.len() as u64, Ordering::Release);
        self.l_old[s - self.lo] = 0;
        // Round-robin the orphaned backlog over alive shards, exactly
        // like the sim engine.  Requests already in the work ring (or
        // in service) cannot be yanked out of an OS thread; they
        // complete regardless of crash mode — the same honest wall-mode
        // divergence PR 6 documented for in-service work.
        let n = self.n();
        let mut landed = vec![0u64; n];
        let mut cursor = s;
        'next: for r in orphans {
            for _ in 0..n {
                cursor = (cursor + 1) % n;
                if self.alive(cursor) {
                    landed[cursor] += 1;
                    self.out.redirected += 1;
                    self.deliver_or_forward(cursor, r, false, now);
                    continue 'next;
                }
            }
            self.shared.dropped.fetch_add(1, Ordering::Release);
        }
        for (to, &count) in landed.iter().enumerate() {
            if count > 0 {
                self.trace(|| TraceEvent::RequestsRedirected {
                    step: now,
                    from: s as u64,
                    to: to as u64,
                    count,
                });
            }
        }
    }

    fn recover(&mut self, s: usize, now: u64) {
        self.shared.down[s].store(false, Ordering::Release);
        self.l_old[s - self.lo] = 0;
        self.out.recoveries += 1;
        self.trace(|| TraceEvent::CrashRecovered {
            step: now,
            proc: s as u64,
        });
    }

    /// Drains the inbox.  The in-flight decrement happens only after a
    /// message is fully processed — *including* any sends it cascaded
    /// (donations forwarding to a third group, deliveries skipping a
    /// crashed shard) — so the global count can never read zero while a
    /// causal chain is still running.
    fn process_inbox(&mut self, now: u64) {
        while let Some(msg) = self.shared.inboxes[self.id].pop() {
            match msg {
                Msg::Deliver { shard, req, routed } => {
                    self.deliver_or_forward(shard, req, routed, now)
                }
                Msg::Donate(plan) => self.apply_donate(&plan, now),
            }
            self.shared.msgs_in_flight.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Retries parked messages once per destination per pass,
    /// preserving per-destination FIFO order (later messages for a
    /// destination that just failed go straight back without a push
    /// attempt).
    fn flush_pending(&mut self) {
        let mut blocked: Vec<usize> = Vec::new();
        for _ in 0..self.pending_out.len() {
            let (dest, msg) = self.pending_out.pop_front().expect("len checked");
            if blocked.contains(&dest) {
                self.pending_out.push_back((dest, msg));
                continue;
            }
            if let Err(back) = self.shared.inboxes[dest].try_push(msg) {
                blocked.push(dest);
                self.pending_out.push_back((dest, back));
            }
        }
    }

    /// Moves backlog heads into the shards' SPSC work rings (FIFO), as
    /// far as ring capacity allows.  Ring occupancy stays part of the
    /// mirrored depth — workers decrement on pop — so triggers keep
    /// seeing the full queue.
    fn refill_rings(&mut self) {
        for s in self.lo..self.hi {
            while let Some(r) = self.backlog[s - self.lo].pop_front() {
                if let Err(back) = self.shared.work[s].try_push(r) {
                    self.backlog[s - self.lo].push_front(back);
                    break;
                }
            }
        }
    }

    /// Parks between passes: a short poll when local work is pending,
    /// otherwise sleep toward the next scheduled arrival/fault —
    /// capped so inbox messages from peers are noticed promptly.  The
    /// deadline is built with [`ticks_to_duration`] (µs-space
    /// saturating multiply), not the `Duration * u32` of PR 6 that
    /// silently truncated ticks past 2^32.
    fn idle_wait(&self, next_due_tick: Option<u64>, busy: bool) {
        if busy {
            std::thread::sleep(Duration::from_micros(20));
            return;
        }
        let cap = Duration::from_micros(200);
        match next_due_tick {
            Some(t) => {
                let due = ticks_to_duration(self.tick_us, t);
                let elapsed = self.start.elapsed();
                if elapsed < due {
                    std::thread::sleep((due - elapsed).min(cap));
                }
            }
            None => std::thread::sleep(cap),
        }
    }

    /// The acceptor loop.  `arrivals` is this acceptor's slice of the
    /// precomputed open-loop schedule (requests whose *home* shard it
    /// owns); `timeline` its owned shards' crash/recovery transitions.
    /// Both are replayed against the shared wall clock — faults drain
    /// whenever they are due, not only when an arrival happens to be
    /// processed, which is the PR 6 late-fault bug this loop fixes.
    pub(crate) fn run(
        mut self,
        arrivals: &[Request],
        timeline: &[(u64, usize, Transition)],
    ) -> AcceptorOut {
        let mut next_arrival = 0usize;
        let mut next_fault = 0usize;
        let mut deregistered = false;
        loop {
            let now = self.now_ticks();
            while let Some(&(at, s, ref tr)) = timeline.get(next_fault) {
                if at > now {
                    break;
                }
                match tr {
                    Transition::Down => self.crash(s, at),
                    Transition::Up => self.recover(s, at),
                }
                next_fault += 1;
            }
            while let Some(&r) = arrivals.get(next_arrival) {
                if r.arrival > now {
                    break;
                }
                self.place_arrival(r, now);
                next_arrival += 1;
            }
            self.process_inbox(now);
            self.flush_pending();
            self.refill_rings();
            if !deregistered && next_arrival == arrivals.len() && next_fault == timeline.len() {
                // Production done here; one SeqCst decrement announces
                // it *after* every send this acceptor will ever
                // originate unprompted.
                self.shared.producing.fetch_sub(1, Ordering::SeqCst);
                deregistered = true;
            }
            let backlog_pending = self.backlog.iter().any(|b| !b.is_empty());
            // Exit: nothing left to produce anywhere, no message in
            // flight, nothing parked, nothing queued behind the rings.
            // Reading `producing` before `msgs_in_flight` (both SeqCst)
            // is sound: a producer's sends increment the in-flight
            // count before its producing decrement, and a receiver's
            // cascaded sends increment before its decrement — so both
            // reading zero proves no send can ever happen again.
            if deregistered
                && !backlog_pending
                && self.pending_out.is_empty()
                && self.shared.producing.load(Ordering::SeqCst) == 0
                && self.shared.msgs_in_flight.load(Ordering::SeqCst) == 0
                && self.shared.inboxes[self.id].is_empty()
            {
                break;
            }
            let next_due = [
                arrivals.get(next_arrival).map(|r| r.arrival),
                timeline.get(next_fault).map(|&(at, _, _)| at),
            ]
            .into_iter()
            .flatten()
            .min();
            let busy = backlog_pending
                || !self.pending_out.is_empty()
                || !self.shared.inboxes[self.id].is_empty();
            self.idle_wait(next_due, busy);
        }
        self.shared.accepting.fetch_sub(1, Ordering::SeqCst);
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_seeds_are_distinct_and_deterministic() {
        let seeds: Vec<u64> = (0..16).map(|a| acceptor_stream_seed(42, a)).collect();
        for (i, &a) in seeds.iter().enumerate() {
            assert_eq!(a, acceptor_stream_seed(42, i as u64));
            for &b in &seeds[i + 1..] {
                assert_ne!(a, b, "adjacent acceptors must not share a stream");
            }
        }
        assert_ne!(acceptor_stream_seed(42, 0), acceptor_stream_seed(43, 0));
    }
}
