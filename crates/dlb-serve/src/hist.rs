//! Log-bucketed latency histograms with a deterministic merge.
//!
//! Each worker (wall mode) or shard (simulated mode) records into its
//! own [`LatencyHistogram`]; at the end of a run the per-worker
//! histograms are merged in index order.  Because a merge is an
//! element-wise add of bucket counts it is commutative and associative,
//! so the merged histogram is *identical* to a single global recorder
//! fed the same samples in any order — the property the proptests in
//! `tests/hist_props.rs` pin down.
//!
//! Buckets are HDR-style: exact below [`SUB_BUCKETS`], then
//! `SUB_BUCKETS` equal-width sub-buckets per power of two.  Reported
//! values are bucket midpoints, so any quantile is off from the true
//! sample by at most a factor of `1/SUB_BUCKETS` (relative).

/// Sub-buckets per octave; also the exact-count threshold.  32 gives a
/// ≤ 1/32 ≈ 3.1 % relative error on every reported quantile.
pub const SUB_BUCKETS: u64 = 32;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();

/// Index of the bucket holding `v`.
///
/// Values below `SUB_BUCKETS` get a bucket each; a value with highest
/// set bit `e ≥ SUB_BITS` lands in sub-bucket `(v >> (e - SUB_BITS)) -
/// SUB_BUCKETS` of octave `e`.  The mapping is continuous: bucket
/// `SUB_BUCKETS` starts exactly at value `SUB_BUCKETS`.
pub fn bucket_of(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let e = 63 - v.leading_zeros();
        let octave = (e - SUB_BITS + 1) as u64;
        (octave * SUB_BUCKETS + (v >> (e - SUB_BITS)) - SUB_BUCKETS) as usize
    }
}

/// Total bucket count: `u64::MAX` (octave 59, sub-bucket 31) lands in
/// the last bucket.
pub const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_BUCKETS as usize;

/// Inclusive value range `[lo, hi]` covered by bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    let i = i as u64;
    if i < SUB_BUCKETS {
        (i, i)
    } else {
        let octave = i / SUB_BUCKETS - 1;
        let offset = i % SUB_BUCKETS;
        let lo = (SUB_BUCKETS + offset) << octave;
        let width = 1u64 << octave;
        (lo, lo + (width - 1))
    }
}

/// A fixed-size log-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.max = self.max.max(v);
    }

    /// Folds `other` into `self` (element-wise bucket add).  Merging is
    /// commutative and associative, so per-worker histograms merged in
    /// any order equal one global recorder.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0 < q ≤ 1`) as a bucket midpoint, clamped to
    /// the exact maximum.  The rank convention is `ceil(q · count)`, so
    /// `quantile(1.0)` is the bucket of the largest sample and the
    /// result differs from the true order statistic by at most a
    /// `1/SUB_BUCKETS` relative error.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i);
                return (lo + (hi - lo) / 2).min(self.max);
            }
        }
        unreachable!("rank ≤ count is always reached");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_tile_the_u64_range() {
        // Every bucket starts where the previous one ends.
        let mut expected_lo = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lo, "bucket {i} starts at {lo}");
            assert!(hi >= lo);
            assert_eq!(bucket_of(lo), i);
            assert_eq!(bucket_of(hi), i);
            if hi == u64::MAX {
                assert_eq!(i, BUCKETS - 1);
                return;
            }
            expected_lo = hi + 1;
        }
        panic!("buckets stop short of u64::MAX");
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUB_BUCKETS {
            h.record(v);
        }
        assert_eq!(h.quantile(0.5), (SUB_BUCKETS / 2) - 1);
        assert_eq!(h.quantile(1.0), SUB_BUCKETS - 1);
        assert_eq!(h.max(), SUB_BUCKETS - 1);
    }

    #[test]
    fn quantiles_track_known_distributions() {
        let mut h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        for (q, exact) in [(0.5, 500u64), (0.99, 990), (0.999, 999)] {
            let got = h.quantile(q);
            let err = got.abs_diff(exact);
            assert!(err * SUB_BUCKETS <= exact, "p{q}: got {got}, exact {exact}");
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_global() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut global = LatencyHistogram::new();
        for v in 0..500u64 {
            let sample = v * v % 7919;
            if v % 2 == 0 { &mut a } else { &mut b }.record(sample);
            global.record(sample);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, global);
        assert_eq!(ba, global);
    }
}
