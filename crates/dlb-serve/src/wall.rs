//! The wall-clock serving engine: a real acceptor thread plus `W`
//! shard workers, all hosted on the `dlb-pool` worker pool.
//!
//! This mode exists to produce *bench numbers* (`BENCH_service.json`):
//! sustained requests/sec and latency quantiles under the same request
//! stream, trigger rule and crash plan as the simulated engine.  It is
//! deliberately not bit-reproducible — thread interleavings decide how
//! deep a queue is when a trigger fires — but the conservation ledger
//! still holds exactly: every generated request is completed or
//! (all-shards-down only) dropped.
//!
//! Division of labour keeps the locking one-queue-at-a-time and
//! deadlock-free:
//! - the **acceptor** (pool index 0) replays the precomputed arrival
//!   schedule against the wall clock, places requests, runs the trigger
//!   checks and performs all inter-queue moves (rebalances and crash
//!   redistribution);
//! - each **worker** drains the queues of its shards (`shard % W ==
//!   worker`), sleeps out the service demand, and records latency into
//!   its own histogram; the per-worker histograms are merged in index
//!   order at the end (merging is order-independent, see `hist`).
//!
//! Crash composition differs from the simulated engine in one honest
//! way: a request already being served when its shard crashes cannot be
//! yanked out of an OS thread, so wall mode lets it complete regardless
//! of the crash mode (queued requests are redistributed exactly as in
//! sim mode).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use dlb_core::balance::even_shares;
use dlb_core::Params;
use dlb_trace::{SharedSink, TraceEvent};
use dlb_workload::service::{Request, RequestSource};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use crate::hist::LatencyHistogram;
use crate::scenario::ServiceScenario;
use crate::stats::{ServiceStats, WallTiming};

struct Shared {
    queues: Vec<Mutex<VecDeque<Request>>>,
    /// Queue lens mirrored outside the locks so workers can scan for
    /// work and the acceptor can run trigger checks without contending.
    depths: Vec<AtomicU64>,
    down: Vec<AtomicBool>,
    accepting_done: AtomicBool,
    completed: AtomicU64,
    dropped: AtomicU64,
}

impl Shared {
    fn push(&self, s: usize, r: Request) {
        self.queues[s].lock().expect("queue lock").push_back(r);
        self.depths[s].fetch_add(1, Ordering::Release);
    }

    fn pop(&self, s: usize) -> Option<Request> {
        let mut q = self.queues[s].lock().expect("queue lock");
        let r = q.pop_front();
        if r.is_some() {
            self.depths[s].fetch_sub(1, Ordering::Release);
        }
        r
    }
}

enum Transition {
    Down,
    Up,
}

#[derive(Default)]
struct AcceptorOut {
    redirected: u64,
    rebalances: u64,
    crashes: u64,
    recoveries: u64,
}

struct WorkerOut {
    hist: LatencyHistogram,
    per_shard_completed: Vec<(usize, u64)>,
}

enum Out {
    Acceptor(AcceptorOut),
    Worker(WorkerOut),
}

/// Sleeps until `start + due`.  Sleeping (rather than spinning out the
/// tail) deliberately trades scheduling precision for not burning the
/// CPU: with many threads per core a spin-wait starves the *other*
/// workers, which costs far more latency than the OS timer slack.
fn wait_until(start: Instant, due: Duration) {
    loop {
        let elapsed = start.elapsed();
        if elapsed >= due {
            return;
        }
        std::thread::sleep(due - elapsed);
    }
}

fn mix_home(key: u64, n: usize) -> usize {
    let mut x = key.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    ((x ^ (x >> 31)) % n as u64) as usize
}

struct Acceptor<'a> {
    shared: &'a Shared,
    params: Params,
    l_old: Vec<u64>,
    rng: ChaCha8Rng,
    sink: Option<&'a SharedSink>,
    out: AcceptorOut,
}

impl Acceptor<'_> {
    fn n(&self) -> usize {
        self.shared.depths.len()
    }

    fn alive(&self, s: usize) -> bool {
        !self.shared.down[s].load(Ordering::Acquire)
    }

    fn place(&self, home: usize) -> Option<usize> {
        let n = self.n();
        (0..n).map(|k| (home + k) % n).find(|&s| self.alive(s))
    }

    /// Equalises `members` toward even-share targets.  Locks are taken
    /// one queue at a time; workers may drain between the snapshot and
    /// the moves, so targets are best-effort — but nothing is ever
    /// lost: whatever was taken from donors is pushed somewhere.
    fn rebalance(&mut self, members: &[usize]) {
        let lens: Vec<u64> = members
            .iter()
            .map(|&m| self.shared.depths[m].load(Ordering::Acquire))
            .collect();
        let total: u64 = lens.iter().sum();
        let targets = even_shares(total, members.len());
        let mut pool: VecDeque<Request> = VecDeque::new();
        for (&m, &target) in members.iter().zip(&targets) {
            let mut q = self.shared.queues[m].lock().expect("queue lock");
            while q.len() as u64 > target {
                pool.push_front(q.pop_back().expect("len > target"));
                self.shared.depths[m].fetch_sub(1, Ordering::Release);
            }
        }
        let moved = pool.len() as u64;
        for (&m, &target) in members.iter().zip(&targets) {
            if pool.is_empty() {
                break;
            }
            let mut q = self.shared.queues[m].lock().expect("queue lock");
            while (q.len() as u64) < target {
                match pool.pop_front() {
                    Some(r) => {
                        q.push_back(r);
                        self.shared.depths[m].fetch_add(1, Ordering::Release);
                    }
                    None => break,
                }
            }
        }
        // Racing workers can leave leftovers; the initiator keeps them.
        for r in pool {
            self.shared.push(members[0], r);
        }
        for (&m, &target) in members.iter().zip(&targets) {
            self.l_old[m] = target;
        }
        self.out.rebalances += 1;
        self.out.redirected += moved;
    }

    fn maybe_trigger(&mut self, s: usize) {
        let depth = self.shared.depths[s].load(Ordering::Acquire);
        if !self.params.grow_triggered(depth, self.l_old[s])
            && !self.params.shrink_triggered(depth, self.l_old[s])
        {
            return;
        }
        let mut peers: Vec<usize> = (0..self.n()).filter(|&p| p != s && self.alive(p)).collect();
        let want = self.params.delta().min(peers.len());
        if want == 0 {
            self.l_old[s] = depth;
            return;
        }
        for k in 0..want {
            let j = self.rng.gen_range(k..peers.len());
            peers.swap(k, j);
        }
        let mut members = Vec::with_capacity(want + 1);
        members.push(s);
        members.extend_from_slice(&peers[..want]);
        self.rebalance(&members);
    }

    fn crash(&mut self, s: usize) {
        self.shared.down[s].store(true, Ordering::Release);
        self.out.crashes += 1;
        let orphans: Vec<Request> = {
            let mut q = self.shared.queues[s].lock().expect("queue lock");
            let drained: Vec<Request> = q.drain(..).collect();
            self.shared.depths[s].fetch_sub(drained.len() as u64, Ordering::Release);
            drained
        };
        self.l_old[s] = 0;
        let n = self.n();
        let mut cursor = s;
        'next: for r in orphans {
            for _ in 0..n {
                cursor = (cursor + 1) % n;
                if self.alive(cursor) {
                    self.shared.push(cursor, r);
                    self.out.redirected += 1;
                    continue 'next;
                }
            }
            self.shared.dropped.fetch_add(1, Ordering::Release);
        }
    }

    fn run(
        mut self,
        start: Instant,
        arrivals: &[Request],
        timeline: &[(u64, usize, Transition)],
        tick_us: u64,
    ) -> AcceptorOut {
        let tick = Duration::from_micros(tick_us);
        let mut next_fault = 0usize;
        for &r in arrivals {
            // Open loop: wait out the schedule, never the service.
            wait_until(start, tick * r.arrival as u32);
            // Apply fault transitions due by this arrival's tick, so a
            // request never lands on a shard that crashed before it.
            while let Some(&(at, s, ref tr)) = timeline.get(next_fault) {
                if at > r.arrival {
                    break;
                }
                match tr {
                    Transition::Down => self.crash(s),
                    Transition::Up => {
                        self.shared.down[s].store(false, Ordering::Release);
                        self.l_old[s] = 0;
                        self.out.recoveries += 1;
                    }
                }
                next_fault += 1;
            }
            match self.place(mix_home(r.key, self.n())) {
                Some(s) => {
                    self.shared.push(s, r);
                    if let Some(sink) = self.sink {
                        if sink.enabled() {
                            sink.record(&TraceEvent::RequestRouted {
                                step: r.arrival,
                                req: r.id,
                                shard: s as u64,
                            });
                        }
                    }
                    self.maybe_trigger(s);
                }
                None => {
                    self.shared.dropped.fetch_add(1, Ordering::Release);
                }
            }
        }
        self.shared.accepting_done.store(true, Ordering::Release);
        self.out
    }
}

fn worker_run(
    w: usize,
    workers: usize,
    shared: &Shared,
    start: Instant,
    tick_us: u64,
    sink: Option<&SharedSink>,
) -> WorkerOut {
    let n = shared.depths.len();
    let my_shards: Vec<usize> = (0..n).filter(|s| s % workers == w).collect();
    let mut hist = LatencyHistogram::new();
    let mut completed: Vec<(usize, u64)> = my_shards.iter().map(|&s| (s, 0)).collect();
    let tick = Duration::from_micros(tick_us);
    loop {
        let mut served = false;
        for (k, &s) in my_shards.iter().enumerate() {
            if shared.depths[s].load(Ordering::Acquire) == 0 {
                continue;
            }
            let Some(r) = shared.pop(s) else { continue };
            served = true;
            std::thread::sleep(tick * r.service as u32);
            let elapsed_ticks = (start.elapsed().as_micros() / tick_us as u128) as u64;
            let latency = elapsed_ticks.saturating_sub(r.arrival);
            hist.record(latency);
            completed[k].1 += 1;
            shared.completed.fetch_add(1, Ordering::Release);
            if let Some(sink) = sink {
                if sink.enabled() {
                    sink.record(&TraceEvent::RequestCompleted {
                        step: elapsed_ticks,
                        req: r.id,
                        shard: s as u64,
                        latency_ticks: latency,
                    });
                }
            }
        }
        if !served {
            if shared.accepting_done.load(Ordering::Acquire)
                && my_shards
                    .iter()
                    .all(|&s| shared.depths[s].load(Ordering::Acquire) == 0)
            {
                break;
            }
            std::thread::sleep(Duration::from_micros(50));
        }
    }
    WorkerOut {
        hist,
        per_shard_completed: completed,
    }
}

/// Runs the scenario against the wall clock with `workers` shard
/// workers (plus the acceptor) and returns the report with the
/// throughput/latency figures filled in.
pub fn run_wall(
    scenario: &ServiceScenario,
    workers: usize,
    sink: Option<SharedSink>,
) -> Result<ServiceStats, String> {
    scenario.validate()?;
    let n = scenario.shards;
    let workers = workers.clamp(1, n);
    let params = Params::new(n, scenario.delta, scenario.f, 1).map_err(|e| e.to_string())?;

    // The whole request stream is precomputed so both engines replay
    // the same arrivals and the acceptor's hot loop does no generation.
    let mut source = RequestSource::new(scenario.load.clone(), scenario.seed);
    let mut arrivals = Vec::new();
    for t in 0..scenario.ticks {
        source.arrivals_at(t, &mut arrivals);
    }
    let issued = source.issued();

    let mut timeline: Vec<(u64, usize, Transition)> = Vec::new();
    for c in &scenario.faults.crashes {
        timeline.push((c.at, c.proc, Transition::Down));
    }
    for c in &scenario.faults.crashes {
        if let Some(r) = c.recover_at {
            timeline.push((r, c.proc, Transition::Up));
        }
    }
    timeline.sort_by_key(|&(at, _, _)| at); // stable: Downs before Ups on ties

    let shared = Shared {
        queues: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
        depths: (0..n).map(|_| AtomicU64::new(0)).collect(),
        down: (0..n).map(|_| AtomicBool::new(false)).collect(),
        accepting_done: AtomicBool::new(false),
        completed: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
    };
    let start = Instant::now();
    let results: Vec<Out> = dlb_pool::par_map(workers + 1, workers + 1, |i| {
        if i == 0 {
            let acceptor = Acceptor {
                shared: &shared,
                params,
                l_old: vec![0; n],
                rng: ChaCha8Rng::seed_from_u64(scenario.seed ^ 0x5e_55_1d_b5),
                sink: sink.as_ref(),
                out: AcceptorOut::default(),
            };
            Out::Acceptor(acceptor.run(start, &arrivals, &timeline, scenario.tick_us))
        } else {
            Out::Worker(worker_run(
                i - 1,
                workers,
                &shared,
                start,
                scenario.tick_us,
                sink.as_ref(),
            ))
        }
    });
    let elapsed = start.elapsed();

    let mut latency = LatencyHistogram::new();
    let mut per_shard_completed = vec![0u64; n];
    let mut acceptor = AcceptorOut::default();
    for out in results {
        match out {
            Out::Acceptor(a) => acceptor = a,
            Out::Worker(w) => {
                latency.merge(&w.hist);
                for (s, c) in w.per_shard_completed {
                    per_shard_completed[s] = c;
                }
            }
        }
    }
    let completed = shared.completed.load(Ordering::Acquire);
    let dropped = shared.dropped.load(Ordering::Acquire);
    if completed + dropped != issued {
        return Err(format!(
            "conservation broken: issued {issued} != completed {completed} + dropped {dropped}"
        ));
    }
    if let Some(sink) = &sink {
        sink.flush();
    }
    let elapsed_ms = elapsed.as_secs_f64() * 1e3;
    Ok(ServiceStats {
        mode: "wall",
        shards: n,
        workers,
        seed: scenario.seed,
        ticks_run: (elapsed.as_micros() / scenario.tick_us as u128) as u64,
        issued,
        completed,
        dropped,
        in_flight: 0,
        redirected: acceptor.redirected,
        rebalances: acceptor.rebalances,
        crashes: acceptor.crashes,
        recoveries: acceptor.recoveries,
        latency,
        per_shard_completed,
        wall: Some(WallTiming {
            elapsed_ms,
            req_per_s: if elapsed_ms > 0.0 {
                completed as f64 / (elapsed_ms / 1e3)
            } else {
                0.0
            },
            tick_us: scenario.tick_us,
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_faults::{CrashEvent, CrashMode, FaultPlan};
    use dlb_workload::service::{RatePhase, ServiceLoad};

    fn quick_scenario() -> ServiceScenario {
        ServiceScenario {
            shards: 4,
            ticks: 200,
            seed: 9,
            delta: 2,
            f: 2.0,
            load: ServiceLoad {
                phases: vec![RatePhase {
                    ticks: 50,
                    rate: 2.0,
                }],
                keys: 32,
                zipf_s: 1.1,
                service_ticks: (1, 2),
            },
            tick_us: 20, // 200 ticks · 20 µs = 4 ms of schedule
            faults: FaultPlan {
                crash_mode: CrashMode::Lost,
                crashes: vec![CrashEvent {
                    proc: 1,
                    at: 60,
                    recover_at: Some(140),
                }],
                ..FaultPlan::reliable()
            },
        }
    }

    #[test]
    fn wall_run_conserves_requests_under_crash() {
        let stats = run_wall(&quick_scenario(), 3, None).expect("run");
        assert_eq!(stats.mode, "wall");
        assert_eq!(stats.workers, 3);
        assert!(stats.issued > 0);
        // Wall-mode crashes only redistribute queued requests; nothing
        // is dropped while at least one shard stays up.
        assert_eq!(stats.completed, stats.issued);
        assert_eq!(stats.dropped, 0);
        assert!(stats.conservation_holds());
        assert_eq!(stats.latency.count(), stats.completed);
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.recoveries, 1);
        assert!(stats.wall.is_some());
        assert_eq!(
            stats.per_shard_completed.iter().sum::<u64>(),
            stats.completed
        );
    }
}
