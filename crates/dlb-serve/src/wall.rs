//! The wall-clock serving engine: `A` sharded acceptors plus `W` shard
//! workers, all hosted on the `dlb-pool` worker pool.
//!
//! This mode exists to produce *bench numbers* (`BENCH_service.json`):
//! sustained requests/sec and latency quantiles under the same request
//! stream, trigger rule and crash plan as the simulated engine.  It is
//! deliberately not bit-reproducible — thread interleavings decide how
//! deep a queue is when a trigger fires — but the conservation ledger
//! still holds exactly: every generated request is completed or
//! (all-shards-down only) dropped.
//!
//! Division of labour is lock-free end to end (see [`crate::ring`]):
//!
//! - each **acceptor** (pool indices `0..A`) owns a contiguous shard
//!   group — private backlogs, private `l_old` trigger baselines, a
//!   private ChaCha partner stream — and replays its slice of the
//!   precomputed arrival schedule and fault timeline against the wall
//!   clock; cross-group moves ride MPSC inbox messages (see
//!   [`crate::acceptor`]);
//! - each **worker** (pool indices `A..A+W`) drains the SPSC work
//!   rings of its shards (`shard % W == worker`), sleeps out the
//!   service demand, and records latency into its own histogram; the
//!   per-worker histograms are merged in index order at the end
//!   (merging is order-independent, see `hist`).
//!
//! Crash composition differs from the simulated engine in one honest
//! way: a request already handed to a worker (in its shard's work ring
//! or in service) when the shard crashes cannot be yanked out of an OS
//! thread, so wall mode lets it complete regardless of the crash mode;
//! the owner's backlog is redistributed exactly as in sim mode.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use dlb_core::Params;
use dlb_trace::{SharedSink, TraceEvent};
use dlb_workload::service::{Request, RequestSource};

use crate::acceptor::{Acceptor, AcceptorOut, Msg, Transition};
use crate::hist::LatencyHistogram;
use crate::home_shard;
use crate::ring::{MpscRing, SpscRing};
use crate::scenario::ServiceScenario;
use crate::stats::{ServiceStats, WallTiming};

/// Per-shard SPSC work-ring capacity.  Small on purpose: the backlog
/// behind it is unbounded and owner-private, so the ring only needs to
/// keep a worker fed between acceptor passes, and a small ring bounds
/// how much work a crashed shard's worker can still complete.
const WORK_RING_CAP: usize = 128;

/// Per-acceptor MPSC inbox capacity.  Senders never block on a full
/// inbox — they park the message locally and retry — so this only
/// sizes the fast path.
const INBOX_CAP: usize = 1024;

/// Everything the acceptors and workers share.  No locks: SPSC rings
/// carry owned-shard work, MPSC rings carry cross-group messages, and
/// the scalars are atomics.
pub(crate) struct Shared {
    /// One SPSC work ring per shard: producer = owning acceptor,
    /// consumer = the worker with `shard % workers == worker`.
    pub(crate) work: Vec<SpscRing<Request>>,
    /// One MPSC inbox per acceptor for cross-group handoffs.
    pub(crate) inboxes: Vec<MpscRing<Msg>>,
    /// `owner[s]` = the acceptor owning shard `s`.
    pub(crate) owner: Vec<usize>,
    /// Acceptor count (shard groups are contiguous, see [`Shared::group`]).
    pub(crate) acceptors: usize,
    /// Queue depths (backlog + work ring) mirrored outside the queues
    /// so any acceptor can run trigger checks over any shard.
    pub(crate) depths: Vec<AtomicU64>,
    pub(crate) down: Vec<AtomicBool>,
    /// Acceptors still replaying arrivals/faults (termination protocol).
    pub(crate) producing: AtomicUsize,
    /// Acceptors still running at all (workers drain until this is 0).
    pub(crate) accepting: AtomicUsize,
    /// Messages sent but not yet fully processed, counted up *before*
    /// each send and down only *after* processing (cascades included).
    pub(crate) msgs_in_flight: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) dropped: AtomicU64,
}

impl Shared {
    /// Acceptor `a`'s contiguous shard group `[a·n/A, (a+1)·n/A)`.
    pub(crate) fn group(&self, a: usize) -> (usize, usize) {
        let n = self.owner.len();
        (a * n / self.acceptors, (a + 1) * n / self.acceptors)
    }
}

/// Wall-clock duration of `ticks` ticks of `tick_us` microseconds
/// each.
///
/// PR 6 computed these as `Duration::from_micros(tick_us) * (ticks as
/// u32)` — a silent `u64 → u32` truncation for any tick past 2^32 (and
/// a potential `Duration * u32` overflow panic before that).
/// Multiplying in µs-space with saturation is exact for every
/// representable schedule (saturation kicks in past ~584k years).
pub(crate) fn ticks_to_duration(tick_us: u64, ticks: u64) -> Duration {
    Duration::from_micros(tick_us.saturating_mul(ticks))
}

struct WorkerOut {
    hist: LatencyHistogram,
    per_shard_completed: Vec<(usize, u64)>,
}

enum Out {
    Acceptor(AcceptorOut),
    Worker(WorkerOut),
}

fn worker_run(
    w: usize,
    workers: usize,
    shared: &Shared,
    start: Instant,
    tick_us: u64,
    sink: Option<&SharedSink>,
) -> WorkerOut {
    let n = shared.work.len();
    let my_shards: Vec<usize> = (0..n).filter(|s| s % workers == w).collect();
    let mut hist = LatencyHistogram::new();
    let mut completed: Vec<(usize, u64)> = my_shards.iter().map(|&s| (s, 0)).collect();
    loop {
        let mut served = false;
        for (k, &s) in my_shards.iter().enumerate() {
            let Some(r) = shared.work[s].pop() else {
                continue;
            };
            shared.depths[s].fetch_sub(1, Ordering::Release);
            served = true;
            std::thread::sleep(ticks_to_duration(tick_us, r.service));
            let elapsed_ticks = (start.elapsed().as_micros() / tick_us as u128) as u64;
            let latency = elapsed_ticks.saturating_sub(r.arrival);
            hist.record(latency);
            completed[k].1 += 1;
            shared.completed.fetch_add(1, Ordering::Release);
            if let Some(sink) = sink {
                if sink.enabled() {
                    sink.record(&TraceEvent::RequestCompleted {
                        step: elapsed_ticks,
                        req: r.id,
                        shard: s as u64,
                        latency_ticks: latency,
                    });
                }
            }
        }
        if !served {
            // Acceptors keep feeding the rings from their backlogs
            // until everything drained, so "all acceptors exited and my
            // rings are empty" is a sound exit condition.
            if shared.accepting.load(Ordering::Acquire) == 0
                && my_shards.iter().all(|&s| shared.work[s].is_empty())
            {
                break;
            }
            std::thread::sleep(Duration::from_micros(50));
        }
    }
    WorkerOut {
        hist,
        per_shard_completed: completed,
    }
}

/// Runs the scenario against the wall clock with `acceptors` sharded
/// acceptor threads and `workers` shard workers, and returns the report
/// with the throughput/latency figures filled in.
pub fn run_wall(
    scenario: &ServiceScenario,
    workers: usize,
    acceptors: usize,
    sink: Option<SharedSink>,
) -> Result<ServiceStats, String> {
    scenario.validate()?;
    let n = scenario.shards;
    let workers = workers.clamp(1, n);
    let acceptors = acceptors.clamp(1, n);
    let params = Params::new(n, scenario.delta, scenario.f, 1).map_err(|e| e.to_string())?;

    let mut owner = vec![0usize; n];
    for a in 0..acceptors {
        for o in owner
            .iter_mut()
            .take((a + 1) * n / acceptors)
            .skip(a * n / acceptors)
        {
            *o = a;
        }
    }

    // The whole request stream is precomputed so both engines replay
    // the same arrivals and the acceptors' hot loops do no generation;
    // each acceptor gets the requests whose *home* shard it owns.
    let mut source = RequestSource::new(scenario.load.clone(), scenario.seed);
    let mut all = Vec::new();
    for t in 0..scenario.ticks {
        source.arrivals_at(t, &mut all);
    }
    let issued = source.issued();
    let mut arrivals: Vec<Vec<Request>> = vec![Vec::new(); acceptors];
    for &r in &all {
        arrivals[owner[home_shard(r.key, n)]].push(r);
    }

    // Fault timelines, partitioned by the crashed shard's owner; the
    // stable sort keeps Downs before Ups on ties, like the sim engine.
    let mut timelines: Vec<Vec<(u64, usize, Transition)>> = vec![Vec::new(); acceptors];
    for c in &scenario.faults.crashes {
        timelines[owner[c.proc]].push((c.at, c.proc, Transition::Down));
    }
    for c in &scenario.faults.crashes {
        if let Some(r) = c.recover_at {
            timelines[owner[c.proc]].push((r, c.proc, Transition::Up));
        }
    }
    for tl in &mut timelines {
        tl.sort_by_key(|&(at, _, _)| at);
    }

    let shared = Shared {
        work: (0..n)
            .map(|_| SpscRing::with_capacity(WORK_RING_CAP))
            .collect(),
        inboxes: (0..acceptors)
            .map(|_| MpscRing::with_capacity(INBOX_CAP))
            .collect(),
        owner,
        acceptors,
        depths: (0..n).map(|_| AtomicU64::new(0)).collect(),
        down: (0..n).map(|_| AtomicBool::new(false)).collect(),
        producing: AtomicUsize::new(acceptors),
        accepting: AtomicUsize::new(acceptors),
        msgs_in_flight: AtomicU64::new(0),
        completed: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
    };
    let start = Instant::now();
    let jobs = acceptors + workers;
    let results: Vec<Out> = dlb_pool::par_map(jobs, jobs, |i| {
        if i < acceptors {
            let acceptor = Acceptor::new(
                i,
                &shared,
                params,
                scenario.seed,
                sink.as_ref(),
                start,
                scenario.tick_us,
            );
            Out::Acceptor(acceptor.run(&arrivals[i], &timelines[i]))
        } else {
            Out::Worker(worker_run(
                i - acceptors,
                workers,
                &shared,
                start,
                scenario.tick_us,
                sink.as_ref(),
            ))
        }
    });
    let elapsed = start.elapsed();

    let mut latency = LatencyHistogram::new();
    let mut per_shard_completed = vec![0u64; n];
    let mut per_acceptor_rebalances = vec![0u64; acceptors];
    let mut totals = AcceptorOut::default();
    for (i, out) in results.into_iter().enumerate() {
        match out {
            Out::Acceptor(a) => {
                per_acceptor_rebalances[i] = a.rebalances;
                totals.rebalances += a.rebalances;
                totals.redirected += a.redirected;
                totals.crashes += a.crashes;
                totals.recoveries += a.recoveries;
                totals.handoffs += a.handoffs;
            }
            Out::Worker(w) => {
                latency.merge(&w.hist);
                for (s, c) in w.per_shard_completed {
                    per_shard_completed[s] = c;
                }
            }
        }
    }
    let completed = shared.completed.load(Ordering::Acquire);
    let dropped = shared.dropped.load(Ordering::Acquire);
    if completed + dropped != issued {
        return Err(format!(
            "conservation broken: issued {issued} != completed {completed} + dropped {dropped}"
        ));
    }
    if shared.work.iter().any(|r| !r.is_empty())
        || shared.inboxes.iter().any(|r| !r.is_empty())
        || shared.msgs_in_flight.load(Ordering::Acquire) != 0
    {
        return Err("sharded engine exited with undrained rings or messages in flight".into());
    }
    if let Some(sink) = &sink {
        sink.flush();
    }
    let elapsed_ms = elapsed.as_secs_f64() * 1e3;
    Ok(ServiceStats {
        mode: "wall",
        shards: n,
        workers,
        acceptors,
        seed: scenario.seed,
        ticks_run: (elapsed.as_micros() / scenario.tick_us as u128) as u64,
        issued,
        completed,
        dropped,
        in_flight: 0,
        redirected: totals.redirected,
        rebalances: totals.rebalances,
        crashes: totals.crashes,
        recoveries: totals.recoveries,
        handoffs: totals.handoffs,
        per_acceptor_rebalances,
        latency,
        per_shard_completed,
        wall: Some(WallTiming {
            elapsed_ms,
            req_per_s: if elapsed_ms > 0.0 {
                completed as f64 / (elapsed_ms / 1e3)
            } else {
                0.0
            },
            tick_us: scenario.tick_us,
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_faults::{CrashEvent, CrashMode, FaultPlan};
    use dlb_workload::service::{RatePhase, ServiceLoad};

    fn quick_scenario() -> ServiceScenario {
        ServiceScenario {
            shards: 4,
            ticks: 200,
            seed: 9,
            delta: 2,
            f: 2.0,
            acceptors: 1,
            load: ServiceLoad {
                phases: vec![RatePhase {
                    ticks: 50,
                    rate: 2.0,
                }],
                keys: 32,
                zipf_s: 1.1,
                service_ticks: (1, 2),
            },
            tick_us: 20, // 200 ticks · 20 µs = 4 ms of schedule
            faults: FaultPlan {
                crash_mode: CrashMode::Lost,
                crashes: vec![CrashEvent {
                    proc: 1,
                    at: 60,
                    recover_at: Some(140),
                }],
                ..FaultPlan::reliable()
            },
        }
    }

    #[test]
    fn wall_run_conserves_requests_under_crash() {
        let stats = run_wall(&quick_scenario(), 3, 1, None).expect("run");
        assert_eq!(stats.mode, "wall");
        assert_eq!(stats.workers, 3);
        assert_eq!(stats.acceptors, 1);
        assert!(stats.issued > 0);
        // Wall-mode crashes only redistribute queued requests; nothing
        // is dropped while at least one shard stays up.
        assert_eq!(stats.completed, stats.issued);
        assert_eq!(stats.dropped, 0);
        assert!(stats.conservation_holds());
        assert_eq!(stats.latency.count(), stats.completed);
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.recoveries, 1);
        assert!(stats.wall.is_some());
        assert_eq!(
            stats.per_shard_completed.iter().sum::<u64>(),
            stats.completed
        );
    }

    #[test]
    fn wall_run_conserves_with_sharded_acceptors() {
        let stats = run_wall(&quick_scenario(), 2, 2, None).expect("run");
        assert_eq!(stats.acceptors, 2);
        assert_eq!(stats.per_acceptor_rebalances.len(), 2);
        assert_eq!(
            stats.per_acceptor_rebalances.iter().sum::<u64>(),
            stats.rebalances
        );
        assert_eq!(stats.completed, stats.issued);
        assert_eq!(stats.dropped, 0);
        assert!(stats.conservation_holds());
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.recoveries, 1);
    }

    #[test]
    fn tick_durations_do_not_truncate_past_u32() {
        // The PR 6 bug: `Duration::from_micros(20) * (tick as u32)`
        // silently wrapped for ticks past 2^32.  An arrival scheduled
        // at tick u32::MAX + 2 must map to a strictly later deadline
        // than one at u32::MAX + 1.
        let big = u32::MAX as u64 + 1;
        assert_eq!(
            ticks_to_duration(20, big),
            Duration::from_micros(20 * (u32::MAX as u64 + 1))
        );
        assert!(ticks_to_duration(20, big + 1) > ticks_to_duration(20, big));
        // The old expression wrapped to zero here.
        assert_eq!(
            ticks_to_duration(20, big).as_micros() as u64 / 20,
            big,
            "no truncation at 2^32 ticks"
        );
        // Saturation instead of panic at the extreme.
        assert_eq!(
            ticks_to_duration(u64::MAX, 2),
            Duration::from_micros(u64::MAX)
        );
    }

    #[test]
    fn late_fault_transitions_still_fire() {
        // PR 6 drained the fault timeline only while placing arrivals,
        // so a recovery scheduled after the last arrival's tick never
        // fired and `recoveries` disagreed with the scenario.  Recovery
        // at tick 180 is well past the last arrival (phase ends at
        // tick 50).
        let mut scenario = quick_scenario();
        scenario.faults.crashes = vec![CrashEvent {
            proc: 2,
            at: 100,
            recover_at: Some(180),
        }];
        let stats = run_wall(&scenario, 2, 2, None).expect("run");
        assert_eq!(stats.crashes, 1);
        assert_eq!(
            stats.recoveries, 1,
            "recovery past the last arrival must still fire"
        );
        assert!(stats.conservation_holds());
        assert_eq!(stats.completed, stats.issued);
    }
}
