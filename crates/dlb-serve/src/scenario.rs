//! Service scenario files: the JSON configuration of a `dlb serve` run.
//!
//! Like the simulation scenarios in `dlb-cli`, the loader is *strict*:
//! unknown keys are rejected with the offending key named, and nested
//! decode errors carry the key path (`field 'faults': crash #0: …`).

use dlb_faults::FaultPlan;
use dlb_json::{FromJson, Json};
use dlb_workload::service::{RatePhase, ServiceLoad};

/// Everything a `dlb serve` run needs, decoded from one JSON file.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceScenario {
    /// Number of shards (request queues).
    pub shards: usize,
    /// Ticks of request generation; the engine then drains.
    pub ticks: u64,
    /// Master seed (request stream and partner draws derive from it).
    pub seed: u64,
    /// Trigger partners `δ`.
    pub delta: usize,
    /// Trigger factor `f`.
    pub f: f64,
    /// The open-loop request stream (rate curve, keys, service range).
    pub load: ServiceLoad,
    /// Wall-clock mode: microseconds per tick.
    pub tick_us: u64,
    /// Wall-clock mode: sharded acceptor threads, each owning a
    /// contiguous shard group with its own trigger state (1 = the PR 6
    /// single-acceptor layout; ignored by the simulated engine, whose
    /// output must not depend on thread counts).
    pub acceptors: usize,
    /// Crash/rejoin plan (reliable by default).
    pub faults: FaultPlan,
}

const ALLOWED: &[&str] = &[
    "shards",
    "ticks",
    "seed",
    "delta",
    "f",
    "keys",
    "zipf_s",
    "service_ticks",
    "phases",
    "tick_us",
    "acceptors",
    "faults",
];

fn phase_from_json(value: &Json) -> Result<RatePhase, String> {
    dlb_json::reject_unknown(value, &["ticks", "rate"])?;
    Ok(RatePhase {
        ticks: dlb_json::req(value, "ticks")?,
        rate: dlb_json::req(value, "rate")?,
    })
}

impl FromJson for ServiceScenario {
    fn from_json(value: &Json) -> Result<Self, String> {
        dlb_json::reject_unknown(value, ALLOWED)?;
        let phases = dlb_json::field(value, "phases")?
            .as_arr()
            .ok_or("field 'phases': expected an array")?
            .iter()
            .enumerate()
            .map(|(i, p)| phase_from_json(p).map_err(|e| format!("field 'phases' #{i}: {e}")))
            .collect::<Result<Vec<_>, _>>()?;
        let service: Vec<u64> = dlb_json::req(value, "service_ticks")?;
        if service.len() != 2 {
            return Err(format!(
                "field 'service_ticks': expected [min, max], got {} entries",
                service.len()
            ));
        }
        Ok(ServiceScenario {
            shards: dlb_json::req(value, "shards")?,
            ticks: dlb_json::req(value, "ticks")?,
            seed: dlb_json::field_or(value, "seed", 0)?,
            delta: dlb_json::field_or(value, "delta", 1)?,
            f: dlb_json::field_or(value, "f", 2.0)?,
            load: ServiceLoad {
                phases,
                keys: dlb_json::req(value, "keys")?,
                zipf_s: dlb_json::field_or(value, "zipf_s", 0.0)?,
                service_ticks: (service[0], service[1]),
            },
            tick_us: dlb_json::field_or(value, "tick_us", 50)?,
            acceptors: dlb_json::field_or(value, "acceptors", 1)?,
            faults: dlb_json::field_or(value, "faults", FaultPlan::reliable())?,
        })
    }
}

impl ServiceScenario {
    /// Parses and validates a scenario from JSON text.
    pub fn parse(text: &str) -> Result<Self, String> {
        let scenario = Self::from_json(&Json::parse(text)?)?;
        scenario.validate()?;
        Ok(scenario)
    }

    /// Cross-field validation beyond what decoding enforces.
    pub fn validate(&self) -> Result<(), String> {
        // Params::new checks n/delta/f coherence (delta < n, f > 1, …).
        dlb_core::Params::new(self.shards, self.delta, self.f, 1).map_err(|e| e.to_string())?;
        if self.ticks == 0 {
            return Err("ticks must be positive".into());
        }
        if self.load.phases.is_empty() {
            return Err("phases must not be empty".into());
        }
        for (i, p) in self.load.phases.iter().enumerate() {
            if p.ticks == 0 {
                return Err(format!("phase #{i}: ticks must be positive"));
            }
            if !p.rate.is_finite() || p.rate < 0.0 {
                return Err(format!(
                    "phase #{i}: rate {} must be finite and ≥ 0",
                    p.rate
                ));
            }
        }
        if self.load.keys == 0 {
            return Err("keys must be positive".into());
        }
        if !self.load.zipf_s.is_finite() || self.load.zipf_s < 0.0 {
            return Err(format!(
                "zipf_s {} must be finite and ≥ 0",
                self.load.zipf_s
            ));
        }
        let (lo, hi) = self.load.service_ticks;
        if lo == 0 || lo > hi {
            return Err(format!(
                "service_ticks [{lo}, {hi}] must satisfy 1 ≤ min ≤ max"
            ));
        }
        if self.tick_us == 0 {
            return Err("tick_us must be positive".into());
        }
        if self.acceptors == 0 {
            return Err("acceptors must be positive".into());
        }
        self.faults.validate(self.shards)?;
        // The service composes with crash/rejoin plans; the message-level
        // fault knobs belong to the simulator's transport and have no
        // meaning for a request front-end.
        if self.faults.loss != 0.0
            || self.faults.transfer_loss != 0.0
            || self.faults.duplication != 0.0
            || self.faults.jitter != 0
            || !self.faults.partitions.is_empty()
        {
            return Err(
                "serve scenarios support crash faults only (loss/transfer_loss/duplication/\
                 jitter/partitions must be absent or zero)"
                    .into(),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
        "shards": 8,
        "ticks": 6000,
        "seed": 42,
        "delta": 2,
        "f": 2.0,
        "keys": 1000,
        "zipf_s": 1.1,
        "service_ticks": [2, 6],
        "phases": [
            {"ticks": 2000, "rate": 1.5},
            {"ticks": 2000, "rate": 4.0},
            {"ticks": 2000, "rate": 0.5}
        ],
        "tick_us": 50,
        "acceptors": 2,
        "faults": {
            "crash_mode": "lost",
            "crashes": [{"proc": 3, "at": 2500, "recover_at": 4000}]
        }
    }"#;

    #[test]
    fn good_scenario_round_trips() {
        let s = ServiceScenario::parse(GOOD).expect("valid scenario");
        assert_eq!(s.shards, 8);
        assert_eq!(s.load.phases.len(), 3);
        assert_eq!(s.load.service_ticks, (2, 6));
        assert_eq!(s.faults.crashes.len(), 1);
        assert_eq!(s.acceptors, 2);
    }

    #[test]
    fn acceptors_defaults_to_one_when_absent() {
        let text = GOOD.replace("\"acceptors\": 2,", "");
        let s = ServiceScenario::parse(&text).expect("valid scenario");
        assert_eq!(s.acceptors, 1);
    }

    #[test]
    fn unknown_keys_are_rejected_with_their_name() {
        let err = ServiceScenario::parse(&GOOD.replace("\"zipf_s\"", "\"zipf\"")).unwrap_err();
        assert!(err.contains("unknown key \"zipf\""), "{err}");
        let err = ServiceScenario::parse(&GOOD.replace("\"rate\"", "\"rps\"")).unwrap_err();
        assert!(err.contains("phases") && err.contains("\"rps\""), "{err}");
    }

    #[test]
    fn cross_field_validation_fires() {
        for (from, to, needle) in [
            ("\"ticks\": 6000", "\"ticks\": 0", "ticks"),
            ("[2, 6]", "[0, 6]", "service_ticks"),
            ("\"delta\": 2", "\"delta\": 8", "delta"),
            ("\"tick_us\": 50", "\"tick_us\": 0", "tick_us"),
            ("\"acceptors\": 2", "\"acceptors\": 0", "acceptors"),
        ] {
            let err = ServiceScenario::parse(&GOOD.replace(from, to)).unwrap_err();
            assert!(err.contains(needle), "{from} -> {to}: {err}");
        }
    }

    #[test]
    fn message_level_faults_are_refused() {
        let text = GOOD.replace("\"crash_mode\": \"lost\",", "\"loss\": 0.1,");
        let err = ServiceScenario::parse(&text).unwrap_err();
        assert!(err.contains("crash faults only"), "{err}");
    }
}
