//! `dlb-serve` — a request-routing service driven by the SPAA'93
//! trigger rule.
//!
//! The paper balances *packets* between processors; this crate applies
//! the same machinery to a serving front-end balancing *requests*
//! between shard queues:
//!
//! - [`router::TriggerRouter`] — sticky key placement plus the paper's
//!   grow/shrink `f`-trigger over live queue depths; a fired trigger
//!   equalises the initiator with `δ` random alive partners using the
//!   even-share primitive from [`dlb_core::balance`].
//! - [`dlb_workload::service::RequestSource`] — the open-loop load
//!   generator (diurnal rate phases, Zipf hot-key skew, seeded service
//!   demands).
//! - [`hist::LatencyHistogram`] — log-bucketed latency recording with
//!   an order-independent merge and a ≤ 1/32 relative quantile error.
//! - [`sim::run_sim`] — the simulated-clock engine on
//!   [`dlb_net::CalendarQueue`]: single-threaded, bit-reproducible for
//!   a fixed seed (and trivially independent of `--workers`), with the
//!   conservation ledger `issued == completed + dropped + in_flight`
//!   checked every tick.
//! - [`wall::run_wall`] — the wall-clock engine (`A` sharded acceptors
//!   plus `W` shard workers on `dlb-pool`, wired with the lock-free
//!   [`ring`] primitives) producing the throughput and latency figures
//!   committed as `BENCH_service.json`; each acceptor owns a contiguous
//!   shard group with its own trigger state, the paper's distributed
//!   triggers partitioned (see the `acceptor` module).
//! - [`stats::ServiceStats`] — the byte-stable report both engines
//!   emit, rendered through `dlb-json`.
//!
//! Crash/rejoin plans from `dlb-faults` compose with both engines, and
//! per-request trace events (`req`, `req_done`, `redirect`, plus wall
//! mode's `handoff`; schema v3) flow through `dlb-trace`'s
//! cached-enabled-flag [`dlb_trace::SharedSink`].

mod acceptor;
pub mod hist;
pub mod ring;
pub mod router;
pub mod scenario;
pub mod sim;
pub mod stats;
pub mod wall;

pub use hist::LatencyHistogram;
pub use ring::{MpscRing, SpscRing};
pub use router::{RebalancePlan, TriggerRouter};
pub use scenario::ServiceScenario;
pub use sim::run_sim;
pub use stats::{ServiceStats, WallTiming};
pub use wall::run_wall;

/// Sticky key → home shard placement: one SplitMix64 finalisation
/// round, reduced mod `shards`.
///
/// This is *the* placement hash for both engines — the simulated
/// router and the wall acceptors call it, so a key's home can never
/// drift between sim and wall mode (PR 6 kept two private copies,
/// `router::mix` and `wall::mix_home`, which this function replaces).
pub fn home_shard(key: u64, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut x = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    ((x ^ (x >> 31)) % shards as u64) as usize
}
