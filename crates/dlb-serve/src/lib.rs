//! `dlb-serve` — a request-routing service driven by the SPAA'93
//! trigger rule.
//!
//! The paper balances *packets* between processors; this crate applies
//! the same machinery to a serving front-end balancing *requests*
//! between shard queues:
//!
//! - [`router::TriggerRouter`] — sticky key placement plus the paper's
//!   grow/shrink `f`-trigger over live queue depths; a fired trigger
//!   equalises the initiator with `δ` random alive partners using the
//!   even-share primitive from [`dlb_core::balance`].
//! - [`dlb_workload::service::RequestSource`] — the open-loop load
//!   generator (diurnal rate phases, Zipf hot-key skew, seeded service
//!   demands).
//! - [`hist::LatencyHistogram`] — log-bucketed latency recording with
//!   an order-independent merge and a ≤ 1/32 relative quantile error.
//! - [`sim::run_sim`] — the simulated-clock engine on
//!   [`dlb_net::CalendarQueue`]: single-threaded, bit-reproducible for
//!   a fixed seed (and trivially independent of `--workers`), with the
//!   conservation ledger `issued == completed + dropped + in_flight`
//!   checked every tick.
//! - [`wall::run_wall`] — the wall-clock engine (acceptor + `W` shard
//!   workers on `dlb-pool`) producing the throughput and latency
//!   figures committed as `BENCH_service.json`.
//! - [`stats::ServiceStats`] — the byte-stable report both engines
//!   emit, rendered through `dlb-json`.
//!
//! Crash/rejoin plans from `dlb-faults` compose with both engines, and
//! per-request trace events (`req`, `req_done`, `redirect`; schema v2)
//! flow through `dlb-trace`'s cached-enabled-flag [`dlb_trace::SharedSink`].

pub mod hist;
pub mod router;
pub mod scenario;
pub mod sim;
pub mod stats;
pub mod wall;

pub use hist::LatencyHistogram;
pub use router::{RebalancePlan, TriggerRouter};
pub use scenario::ServiceScenario;
pub use sim::run_sim;
pub use stats::{ServiceStats, WallTiming};
pub use wall::run_wall;
