//! The simulated-clock serving engine.
//!
//! A single-threaded event loop over [`dlb_net::CalendarQueue`]: the
//! open-loop source injects arrivals, completions are scheduled events,
//! and the fault plan's crashes/recoveries are events pushed up front.
//! Being single-threaded is the point — the report is a pure function
//! of `(scenario, seed)`, bit-identical across repeated runs *and*
//! across `--workers` values (the worker count is deliberately ignored
//! here), which is what lets CI golden-gate the stats JSON.
//!
//! Crash semantics (composition with `dlb-faults`):
//! - A crashed shard's *queued* requests are always redistributed
//!   round-robin over the alive shards (a request is not state that can
//!   be frozen away — the client is still waiting).
//! - The request *in service* follows the plan's [`CrashMode`]:
//!   `Lost` destroys it (ledgered as `dropped`), `Frozen` requeues it
//!   (its service restarts from scratch on re-dispatch).
//! - The conservation ledger `issued == completed + dropped +
//!   in_flight` is checked after every tick, not just at the end.

use std::collections::VecDeque;

use dlb_faults::{CrashMode, FaultInjector};
use dlb_net::CalendarQueue;
use dlb_trace::{SharedSink, TraceEvent};
use dlb_workload::service::{Request, RequestSource};

use crate::hist::LatencyHistogram;
use crate::router::{RebalancePlan, TriggerRouter};
use crate::scenario::ServiceScenario;
use crate::stats::ServiceStats;

enum Ev {
    Arrive(Request),
    /// `epoch` guards against completions of a since-crashed shard.
    Complete {
        shard: usize,
        epoch: u64,
        req: Request,
    },
    Down(usize),
    Up(usize),
}

struct Engine {
    queues: Vec<VecDeque<Request>>,
    in_service: Vec<Option<Request>>,
    epoch: Vec<u64>,
    router: TriggerRouter,
    hists: Vec<LatencyHistogram>,
    per_shard_completed: Vec<u64>,
    crash_mode: CrashMode,
    sink: Option<SharedSink>,
    completed: u64,
    dropped: u64,
    redirected: u64,
    crashes: u64,
    recoveries: u64,
}

impl Engine {
    fn in_flight(&self) -> u64 {
        let queued: usize = self.queues.iter().map(|q| q.len()).sum();
        let serving = self.in_service.iter().filter(|s| s.is_some()).count();
        (queued + serving) as u64
    }

    fn trace(&self, build: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.sink {
            if sink.enabled() {
                sink.record(&build());
            }
        }
    }

    /// Moves queued requests to match a fired trigger's targets.  The
    /// router already committed the target depths; here the *newest*
    /// requests migrate (donor queue tails), so the FIFO order of what
    /// stays put is untouched.
    fn apply_plan(&mut self, plan: &RebalancePlan, now: u64) {
        let mut pool: VecDeque<(usize, Request)> = VecDeque::new();
        for (&m, &target) in plan.members.iter().zip(&plan.targets) {
            let q = &mut self.queues[m];
            while q.len() as u64 > target {
                let r = q.pop_back().expect("len > target ≥ 0");
                pool.push_front((m, r));
            }
        }
        for (&m, &target) in plan.members.iter().zip(&plan.targets) {
            let mut moved_from: Vec<(usize, u64)> = Vec::new();
            while (self.queues[m].len() as u64) < target {
                let (from, r) = pool.pop_front().expect("targets sum to total");
                self.queues[m].push_back(r);
                match moved_from.iter_mut().find(|(f, _)| *f == from) {
                    Some((_, c)) => *c += 1,
                    None => moved_from.push((from, 1)),
                }
            }
            for (from, count) in moved_from {
                self.redirected += count;
                self.trace(|| TraceEvent::RequestsRedirected {
                    step: now,
                    from: from as u64,
                    to: m as u64,
                    count,
                });
            }
        }
        debug_assert!(pool.is_empty(), "even shares consume the whole pool");
    }

    fn route(&mut self, r: Request, now: u64) {
        match self.router.place(r.key) {
            Some(s) => {
                self.queues[s].push_back(r);
                self.trace(|| TraceEvent::RequestRouted {
                    step: now,
                    req: r.id,
                    shard: s as u64,
                });
                if let Some(plan) = self.router.note_enqueue(s) {
                    self.apply_plan(&plan, now);
                }
            }
            None => self.dropped += 1,
        }
    }

    fn crash(&mut self, s: usize, now: u64) {
        self.crashes += 1;
        self.epoch[s] += 1;
        self.router.set_alive(s, false);
        self.trace(|| TraceEvent::FaultInjected {
            step: now,
            proc: s as u64,
            kind: "crash".into(),
        });
        let mut orphans = std::mem::take(&mut self.queues[s]);
        match (self.crash_mode, self.in_service[s].take()) {
            (CrashMode::Lost, Some(_)) => self.dropped += 1,
            (CrashMode::Frozen, Some(r)) => orphans.push_front(r),
            (_, None) => {}
        }
        self.router.clear(s);
        if orphans.is_empty() {
            return;
        }
        // Round-robin the orphans over the alive shards, wrapping from
        // the crash site; per-destination counts feed the trace.
        let n = self.queues.len();
        let mut landed = vec![0u64; n];
        let mut cursor = s;
        'next: for r in orphans {
            for _ in 0..n {
                cursor = (cursor + 1) % n;
                if self.router.is_alive(cursor) {
                    self.queues[cursor].push_back(r);
                    self.router.note_redistributed(cursor);
                    landed[cursor] += 1;
                    self.redirected += 1;
                    continue 'next;
                }
            }
            // Every shard is down: the request cannot survive.
            self.dropped += 1;
        }
        for (to, &count) in landed.iter().enumerate() {
            if count > 0 {
                self.trace(|| TraceEvent::RequestsRedirected {
                    step: now,
                    from: s as u64,
                    to: to as u64,
                    count,
                });
            }
        }
    }

    fn recover(&mut self, s: usize, now: u64) {
        self.recoveries += 1;
        self.router.set_alive(s, true);
        self.trace(|| TraceEvent::CrashRecovered {
            step: now,
            proc: s as u64,
        });
    }
}

/// Runs the scenario on the simulated clock and returns the report.
///
/// Errors if the conservation ledger ever breaks or the drain exceeds a
/// generous safety horizon (which would mean requests are stuck).
pub fn run_sim(
    scenario: &ServiceScenario,
    sink: Option<SharedSink>,
) -> Result<ServiceStats, String> {
    scenario.validate()?;
    let n = scenario.shards;
    let injector = FaultInjector::new(scenario.faults.clone(), n)?;
    let mut source = RequestSource::new(scenario.load.clone(), scenario.seed);
    let mut eq: CalendarQueue<Ev> = CalendarQueue::new();
    // Crash/recovery events first: construction-time pushes carry the
    // earliest stamps, so within a tick they pop before completions and
    // arrivals (down-then-reroute, never route-then-down).
    for c in injector.crashes() {
        eq.push(c.at, Ev::Down(c.proc));
        if let Some(r) = c.recover_at {
            eq.push(r, Ev::Up(c.proc));
        }
    }
    let mut engine = Engine {
        queues: vec![VecDeque::new(); n],
        in_service: vec![None; n],
        epoch: vec![0; n],
        router: TriggerRouter::new(n, scenario.delta, scenario.f, scenario.seed)?,
        hists: vec![LatencyHistogram::new(); n],
        per_shard_completed: vec![0; n],
        crash_mode: injector.crash_mode(),
        sink,
        completed: 0,
        dropped: 0,
        redirected: 0,
        crashes: 0,
        recoveries: 0,
    };

    let horizon = scenario.ticks;
    // Worst-case drain: every request serialised on one shard, plus the
    // latest fault event.  Exceeding this means requests are stuck.
    let fault_horizon = injector
        .crashes()
        .iter()
        .map(|c| c.recover_at.unwrap_or(c.at))
        .max()
        .unwrap_or(0);
    let mut batch = Vec::new();
    let mut now = 0u64;
    loop {
        if now < horizon {
            batch.clear();
            source.arrivals_at(now, &mut batch);
            for &r in &batch {
                eq.push(now, Ev::Arrive(r));
            }
        }
        while let Some((_, ev)) = eq.pop_due(now) {
            match ev {
                Ev::Arrive(r) => engine.route(r, now),
                Ev::Complete { shard, epoch, req } => {
                    if engine.epoch[shard] != epoch {
                        continue; // the shard crashed since; already handled
                    }
                    engine.in_service[shard] = None;
                    engine.completed += 1;
                    engine.per_shard_completed[shard] += 1;
                    let latency = now - req.arrival;
                    engine.hists[shard].record(latency);
                    engine.trace(|| TraceEvent::RequestCompleted {
                        step: now,
                        req: req.id,
                        shard: shard as u64,
                        latency_ticks: latency,
                    });
                }
                Ev::Down(s) => engine.crash(s, now),
                Ev::Up(s) => engine.recover(s, now),
            }
        }
        // Dispatch idle alive shards.
        for s in 0..n {
            if engine.in_service[s].is_some() || !engine.router.is_alive(s) {
                continue;
            }
            if let Some(req) = engine.queues[s].pop_front() {
                if let Some(plan) = engine.router.note_dequeue(s) {
                    engine.apply_plan(&plan, now);
                }
                engine.in_service[s] = Some(req);
                eq.push(
                    now + req.service,
                    Ev::Complete {
                        shard: s,
                        epoch: engine.epoch[s],
                        req,
                    },
                );
            }
        }
        let in_flight = engine.in_flight();
        if source.issued() != engine.completed + engine.dropped + in_flight {
            return Err(format!(
                "conservation broken at tick {now}: issued {} != completed {} + dropped {} \
                 + in_flight {in_flight}",
                source.issued(),
                engine.completed,
                engine.dropped,
            ));
        }
        if now >= horizon && in_flight == 0 && eq.is_empty() {
            break;
        }
        let safety = horizon
            .max(fault_horizon)
            .saturating_add(
                source
                    .issued()
                    .saturating_mul(scenario.load.service_ticks.1),
            )
            .saturating_add(1);
        if now > safety {
            return Err(format!("drain exceeded safety horizon {safety}"));
        }
        now += 1;
    }
    if let Some(sink) = &engine.sink {
        sink.flush();
    }

    let mut latency = LatencyHistogram::new();
    for h in &engine.hists {
        latency.merge(h);
    }
    Ok(ServiceStats {
        mode: "sim",
        shards: n,
        workers: 1,
        acceptors: 1,
        seed: scenario.seed,
        ticks_run: now,
        issued: source.issued(),
        completed: engine.completed,
        dropped: engine.dropped,
        in_flight: 0,
        redirected: engine.redirected,
        rebalances: engine.router.rebalances(),
        crashes: engine.crashes,
        recoveries: engine.recoveries,
        handoffs: 0,
        per_acceptor_rebalances: vec![],
        latency,
        per_shard_completed: engine.per_shard_completed,
        wall: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_faults::{CrashEvent, FaultPlan};
    use dlb_json::ToJson;
    use dlb_trace::BufferSink;
    use dlb_workload::service::{RatePhase, ServiceLoad};

    fn scenario() -> ServiceScenario {
        ServiceScenario {
            shards: 4,
            ticks: 400,
            seed: 11,
            delta: 2,
            f: 2.0,
            load: ServiceLoad {
                phases: vec![
                    RatePhase {
                        ticks: 100,
                        rate: 1.2,
                    },
                    RatePhase {
                        ticks: 100,
                        rate: 3.0,
                    },
                ],
                keys: 64,
                zipf_s: 1.1,
                service_ticks: (1, 3),
            },
            tick_us: 50,
            acceptors: 1,
            faults: FaultPlan::reliable(),
        }
    }

    fn with_crash(mode: CrashMode) -> ServiceScenario {
        let mut s = scenario();
        s.faults.crash_mode = mode;
        s.faults.crashes = vec![CrashEvent {
            proc: 1,
            at: 150,
            recover_at: Some(300),
        }];
        s
    }

    #[test]
    fn reliable_run_completes_everything() {
        let stats = run_sim(&scenario(), None).expect("run");
        assert!(stats.issued > 0);
        assert_eq!(stats.completed, stats.issued);
        assert_eq!(stats.dropped, 0);
        assert!(stats.conservation_holds());
        assert_eq!(stats.latency.count(), stats.completed);
        assert_eq!(
            stats.per_shard_completed.iter().sum::<u64>(),
            stats.completed
        );
        assert!(stats.rebalances > 0, "skewed keys must fire the trigger");
    }

    #[test]
    fn repeated_runs_are_byte_identical() {
        let a = run_sim(&scenario(), None).unwrap().to_json().render();
        let b = run_sim(&scenario(), None).unwrap().to_json().render();
        assert_eq!(a, b);
    }

    #[test]
    fn lost_crash_drops_at_most_the_in_service_request() {
        let stats = run_sim(&with_crash(CrashMode::Lost), None).expect("run");
        assert!(stats.crashes == 1 && stats.recoveries == 1);
        assert!(stats.dropped <= 1, "only the in-service request can die");
        assert!(stats.conservation_holds());
        assert!(stats.redirected > 0, "queued requests were redistributed");
    }

    #[test]
    fn frozen_crash_drops_nothing() {
        let stats = run_sim(&with_crash(CrashMode::Frozen), None).expect("run");
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.completed, stats.issued);
        assert!(stats.conservation_holds());
    }

    #[test]
    fn trace_carries_the_request_lifecycle() {
        let buffer = BufferSink::new();
        let stats = run_sim(&with_crash(CrashMode::Lost), Some(buffer.handle())).expect("run");
        let events = buffer.take();
        let routed = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::RequestRouted { .. }))
            .count() as u64;
        let done = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::RequestCompleted { .. }))
            .count() as u64;
        let redirected: u64 = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::RequestsRedirected { count, .. } => Some(*count),
                _ => None,
            })
            .sum();
        assert_eq!(routed, stats.issued, "every request is routed once");
        assert_eq!(done, stats.completed);
        assert_eq!(redirected, stats.redirected);
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::CrashRecovered { .. })));
    }
}
