//! Trigger-rule request placement over live shard queue depths.
//!
//! The paper's processors watch their *own* load and fire a balancing
//! operation with `δ` random partners when it grows or shrinks by the
//! factor `f` since the last balance.  [`TriggerRouter`] transplants
//! that rule onto a request-routing front-end: the "load" of a shard is
//! its queue depth, a new request lands on its key's home shard
//! (sticky placement preserves hot-key skew, which is precisely what
//! the trigger rule then has to fix), and every enqueue/dequeue runs
//! the grow/shrink trigger check.  A fired trigger produces a
//! [`RebalancePlan`]: the member set and the equal-share target depths
//! from the paper's balancing primitive ([`dlb_core::balance`]).
//!
//! The router only does bookkeeping — the engine owns the actual queues
//! and moves requests to match the plan (newest requests migrate, so
//! FIFO service order of the old requests is preserved).

use dlb_core::{balance::even_shares_into, Params};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// One fired trigger: equalise `members` (initiator first) so member
/// `k` holds exactly `targets[k]` queued requests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalancePlan {
    /// Participating shards, initiator first, partners in draw order.
    pub members: Vec<usize>,
    /// Target queue depth per member (paper's even split, ±1).
    pub targets: Vec<u64>,
}

/// Deterministic trigger-rule placement state (simulated-clock engine).
pub struct TriggerRouter {
    params: Params,
    /// Queued (not in-service) requests per shard.
    depths: Vec<u64>,
    /// Depth at each shard's last balance — the paper's `l_old`.
    l_old: Vec<u64>,
    alive: Vec<bool>,
    rng: ChaCha8Rng,
    rebalances: u64,
    scratch: Vec<usize>,
}

impl TriggerRouter {
    /// A router over `shards` shards with trigger partners `delta` and
    /// trigger factor `f` (validated by [`Params::new`]).
    pub fn new(shards: usize, delta: usize, f: f64, seed: u64) -> Result<Self, String> {
        let params = Params::new(shards, delta, f, 1).map_err(|e| e.to_string())?;
        Ok(TriggerRouter {
            params,
            depths: vec![0; shards],
            l_old: vec![0; shards],
            alive: vec![true; shards],
            rng: ChaCha8Rng::seed_from_u64(seed ^ 0x5e_55_1d_b5),
            rebalances: 0,
            scratch: Vec::new(),
        })
    }

    /// Number of shards.
    pub fn n(&self) -> usize {
        self.depths.len()
    }

    /// Queued depth of shard `s`.
    pub fn depth(&self, s: usize) -> u64 {
        self.depths[s]
    }

    /// Whether shard `s` is up.
    pub fn is_alive(&self, s: usize) -> bool {
        self.alive[s]
    }

    /// Trigger-rule rebalances fired so far.
    pub fn rebalances(&self) -> u64 {
        self.rebalances
    }

    /// The key's home shard, ignoring liveness.  Delegates to the
    /// crate-level [`crate::home_shard`] so sim and wall placement can
    /// never drift.
    pub fn home_shard(&self, key: u64) -> usize {
        crate::home_shard(key, self.depths.len())
    }

    /// Placement shard for `key`: the home shard, or the next alive
    /// shard after it (wrapping) when the home is down.  `None` when
    /// every shard is down.
    pub fn place(&self, key: u64) -> Option<usize> {
        let n = self.depths.len();
        let home = self.home_shard(key);
        (0..n).map(|k| (home + k) % n).find(|&s| self.alive[s])
    }

    /// Records one request enqueued on `s` and runs the grow trigger.
    pub fn note_enqueue(&mut self, s: usize) -> Option<RebalancePlan> {
        self.depths[s] += 1;
        if self.params.grow_triggered(self.depths[s], self.l_old[s]) {
            self.fire(s)
        } else {
            None
        }
    }

    /// Records one request dequeued from `s` and runs the shrink
    /// trigger (the paper's work-stealing direction).
    pub fn note_dequeue(&mut self, s: usize) -> Option<RebalancePlan> {
        debug_assert!(self.depths[s] > 0, "dequeue from empty shard {s}");
        self.depths[s] -= 1;
        if self.params.shrink_triggered(self.depths[s], self.l_old[s]) {
            self.fire(s)
        } else {
            None
        }
    }

    /// Marks shard `s` up or down.  A revived shard restarts its
    /// trigger baseline at zero.
    pub fn set_alive(&mut self, s: usize, alive: bool) {
        self.alive[s] = alive;
        if alive {
            self.l_old[s] = 0;
        }
    }

    /// Zeroes the depth of a crashed shard whose queue the engine just
    /// confiscated for redistribution.
    pub fn clear(&mut self, s: usize) {
        self.depths[s] = 0;
        self.l_old[s] = 0;
    }

    /// Reflects a crash-redistributed request landing on `s` *without*
    /// running the trigger check (mass moves would otherwise fire a
    /// cascade of overlapping rebalances mid-redistribution; the next
    /// organic enqueue/dequeue re-arms the rule against the new depth).
    pub fn note_redistributed(&mut self, s: usize) {
        self.depths[s] += 1;
    }

    /// Fires a balance at initiator `s`: draws up to `δ` distinct alive
    /// partners, computes the even-share targets, commits the new
    /// depths and `l_old`, and returns the plan for the engine to act
    /// on.  With no alive partner the trigger only resets its baseline.
    fn fire(&mut self, s: usize) -> Option<RebalancePlan> {
        self.scratch.clear();
        self.scratch
            .extend((0..self.depths.len()).filter(|&p| p != s && self.alive[p]));
        let want = self.params.delta().min(self.scratch.len());
        if want == 0 {
            self.l_old[s] = self.depths[s];
            return None;
        }
        // Partial Fisher–Yates over the alive peers: draw order is the
        // partner order, so the plan is a pure function of the RNG
        // stream and the depth history.
        for k in 0..want {
            let j = self.rng.gen_range(k..self.scratch.len());
            self.scratch.swap(k, j);
        }
        let mut members = Vec::with_capacity(want + 1);
        members.push(s);
        members.extend_from_slice(&self.scratch[..want]);
        let total: u64 = members.iter().map(|&m| self.depths[m]).sum();
        let mut targets = Vec::with_capacity(members.len());
        even_shares_into(total, members.len(), &mut targets);
        for (&m, &t) in members.iter().zip(&targets) {
            self.depths[m] = t;
            self.l_old[m] = t;
        }
        self.rebalances += 1;
        Some(RebalancePlan { members, targets })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router(n: usize) -> TriggerRouter {
        TriggerRouter::new(n, 2, 2.0, 7).expect("valid params")
    }

    #[test]
    fn placement_is_sticky_and_skips_dead_shards() {
        let mut r = router(8);
        let home = r.home_shard(42);
        assert_eq!(r.place(42), Some(home));
        r.set_alive(home, false);
        let moved = r.place(42).expect("others alive");
        assert_ne!(moved, home);
        r.set_alive(home, true);
        assert_eq!(r.place(42), Some(home));
        for s in 0..8 {
            r.set_alive(s, false);
        }
        assert_eq!(r.place(42), None);
    }

    #[test]
    fn grow_trigger_equalises_depths() {
        let mut r = router(4);
        let mut plans = Vec::new();
        for _ in 0..64 {
            if let Some(plan) = r.note_enqueue(0) {
                plans.push(plan);
            }
        }
        assert!(!plans.is_empty(), "piling onto one shard must trigger");
        for plan in &plans {
            assert_eq!(plan.members[0], 0, "initiator leads the member list");
            assert_eq!(plan.members.len(), 3, "initiator + delta partners");
            let (lo, hi) = (
                plan.targets.iter().min().unwrap(),
                plan.targets.iter().max().unwrap(),
            );
            assert!(hi - lo <= 1, "even split ±1, got {:?}", plan.targets);
        }
        let total: u64 = (0..4).map(|s| r.depth(s)).sum();
        assert_eq!(total, 64, "rebalancing conserves requests");
    }

    #[test]
    fn dead_shards_never_join_a_balance() {
        let mut r = router(4);
        r.set_alive(3, false);
        for _ in 0..200 {
            if let Some(plan) = r.note_enqueue(1) {
                assert!(!plan.members.contains(&3));
            }
        }
        assert_eq!(r.depth(3), 0);
    }

    #[test]
    fn plans_are_deterministic_per_seed() {
        let run = |seed| {
            let mut r = TriggerRouter::new(6, 2, 1.5, seed).unwrap();
            let mut log = Vec::new();
            for i in 0..300u64 {
                if let Some(p) = r.note_enqueue((i % 3) as usize) {
                    log.push(p);
                }
            }
            log
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }
}
