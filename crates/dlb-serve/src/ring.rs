//! Bounded lock-free rings for the sharded wall engine.
//!
//! The single-acceptor wall engine (PR 6) kept every shard queue behind
//! a `Mutex<VecDeque<Request>>`; with `A` acceptors that lock is both a
//! scalability ceiling and a deadlock hazard.  The sharded engine
//! replaces it with two ring flavours, both fixed-capacity arrays of
//! slots with monotonically increasing positions (wrap = `pos & mask`):
//!
//! - [`SpscRing`] — single producer, single consumer.  One per shard:
//!   the *owning acceptor* produces ready-to-serve requests, the shard's
//!   worker consumes them.  Push and pop are one load + one store of the
//!   opposite index each; no CAS, no lock.
//! - [`MpscRing`] — multi-producer, single consumer (Vyukov's bounded
//!   queue with per-slot sequence numbers, used MPSC).  One per
//!   acceptor: every *other* acceptor produces cross-group handoff
//!   messages (placement fallbacks, rebalance plan segments, crash
//!   redistribution), the owning acceptor consumes them.
//!
//! Both `try_push` variants fail fast when full instead of blocking —
//! the acceptors keep a local overflow queue and retry on the next loop
//! pass, so two full inboxes can never deadlock each other.
//!
//! # Safety contract
//!
//! The types are `Sync` so they can sit in a shared arena indexed by
//! shard/acceptor, but the SPSC ring's safety relies on the caller
//! upholding the single-producer/single-consumer discipline (the wall
//! engine's ownership map guarantees it: only `owner(s)` pushes to
//! `work[s]`, only `worker_of(s)` pops).  The MPSC ring additionally
//! requires a single consumer per ring (each acceptor drains only its
//! own inbox).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A bounded single-producer single-consumer ring.
///
/// Capacity is rounded up to a power of two.  `head` is the consumer
/// position, `tail` the producer position; both only ever increase, and
/// `tail - head` is the occupancy.
pub struct SpscRing<T> {
    mask: usize,
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Consumer position (next slot to pop).
    head: AtomicUsize,
    /// Producer position (next slot to fill).
    tail: AtomicUsize,
}

// SAFETY: slots are only touched by the unique producer (between
// reserving and publishing `tail`) and the unique consumer (between
// observing `tail` and publishing `head`); the release/acquire pair on
// `tail` (push → pop) and `head` (pop → push) orders the data accesses.
unsafe impl<T: Send> Send for SpscRing<T> {}
unsafe impl<T: Send> Sync for SpscRing<T> {}

impl<T> SpscRing<T> {
    /// A ring holding at least `cap` items (rounded up to a power of
    /// two, minimum 2).
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(2).next_power_of_two();
        SpscRing {
            mask: cap - 1,
            buf: (0..cap)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Current occupancy.  Exact for the producer and the consumer;
    /// racy-but-monotone for anyone else (a trigger check reading a
    /// depth mirror tolerates that).
    pub fn len(&self) -> usize {
        self.tail
            .load(Ordering::Acquire)
            .wrapping_sub(self.head.load(Ordering::Acquire))
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Producer side: appends `v`, or returns it when the ring is full.
    ///
    /// Must only be called from the ring's unique producer thread.
    pub fn try_push(&self, v: T) -> Result<(), T> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > self.mask {
            return Err(v);
        }
        // SAFETY: the slot at `tail` is outside the live [head, tail)
        // window, so the consumer cannot be reading it; we are the only
        // producer, so nobody else is writing it.
        unsafe { (*self.buf[tail & self.mask].get()).write(v) };
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Consumer side: removes the oldest item, if any.
    ///
    /// Must only be called from the ring's unique consumer thread.
    pub fn pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: `head < tail` means the slot was fully written before
        // the producer's release-store of `tail`, which our acquire-load
        // observed; publishing `head` afterwards hands the slot back.
        let v = unsafe { (*self.buf[head & self.mask].get()).assume_init_read() };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(v)
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        // &mut self: no concurrent access remains; drain to run drops.
        while self.pop().is_some() {}
    }
}

/// One slot of the MPSC ring: Vyukov's sequence-stamped cell.
struct Slot<T> {
    /// `seq == pos`: free for the producer claiming position `pos`;
    /// `seq == pos + 1`: filled, ready for the consumer at `pos`;
    /// after consumption the consumer stores `pos + capacity`, making
    /// the slot free for the producer one lap later.
    seq: AtomicUsize,
    val: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded multi-producer single-consumer ring (Vyukov's bounded
/// queue; the general algorithm is MPMC, we use it with one consumer).
pub struct MpscRing<T> {
    mask: usize,
    buf: Box<[Slot<T>]>,
    /// Consumer position.
    head: AtomicUsize,
    /// Producer claim counter (CAS-incremented).
    tail: AtomicUsize,
}

// SAFETY: a producer only writes a slot it claimed by CAS on `tail`
// while the slot's `seq` marked it free; the consumer only reads a slot
// whose `seq` marks it filled; `seq` release/acquire pairs order the
// data accesses in both directions.
unsafe impl<T: Send> Send for MpscRing<T> {}
unsafe impl<T: Send> Sync for MpscRing<T> {}

impl<T> MpscRing<T> {
    /// A ring holding at least `cap` items (rounded up to a power of
    /// two, minimum 2).
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(2).next_power_of_two();
        MpscRing {
            mask: cap - 1,
            buf: (0..cap)
                .map(|i| Slot {
                    seq: AtomicUsize::new(i),
                    val: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Approximate occupancy (exact once all producers are quiescent —
    /// which is when the termination protocol reads it).
    pub fn len(&self) -> usize {
        self.tail
            .load(Ordering::Acquire)
            .wrapping_sub(self.head.load(Ordering::Acquire))
    }

    /// Whether the ring is (approximately) empty; see [`Self::len`].
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Any-producer side: appends `v`, or returns it when the ring is
    /// full.  Lock-free: a stalled producer cannot block others (it
    /// stalls only *its own* claimed slot's visibility).
    pub fn try_push(&self, v: T) -> Result<(), T> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.buf[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                // Slot free at our position: claim it.
                match self.tail.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS gave us exclusive write access
                        // to this slot until we publish `seq`.
                        unsafe { (*slot.val.get()).write(v) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(current) => pos = current,
                }
            } else if dif < 0 {
                // The slot is still occupied from one lap ago: full.
                return Err(v);
            } else {
                // Another producer claimed `pos`; chase the tail.
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Consumer side: removes the oldest item, if any.
    ///
    /// Must only be called from the ring's unique consumer thread.
    pub fn pop(&self) -> Option<T> {
        let pos = self.head.load(Ordering::Relaxed);
        let slot = &self.buf[pos & self.mask];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq as isize - pos.wrapping_add(1) as isize != 0 {
            return None; // not yet filled (or mid-write)
        }
        // SAFETY: `seq == pos + 1` means the producer's release-store
        // published the value; storing `pos + capacity` afterwards
        // recycles the slot for the next lap.
        let v = unsafe { (*slot.val.get()).assume_init_read() };
        slot.seq
            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
        self.head.store(pos.wrapping_add(1), Ordering::Relaxed);
        Some(v)
    }
}

impl<T> Drop for MpscRing<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spsc_fifo_and_full_empty_edges() {
        let r: SpscRing<u64> = SpscRing::with_capacity(4);
        assert_eq!(r.capacity(), 4);
        assert!(r.is_empty());
        assert_eq!(r.pop(), None);
        for v in 0..4u64 {
            assert!(r.try_push(v).is_ok());
        }
        assert_eq!(r.try_push(99), Err(99), "full ring refuses");
        assert_eq!(r.len(), 4);
        for v in 0..4u64 {
            assert_eq!(r.pop(), Some(v), "FIFO order");
        }
        assert_eq!(r.pop(), None);
        // Wrap around a few laps.
        for lap in 0..10u64 {
            assert!(r.try_push(lap).is_ok());
            assert_eq!(r.pop(), Some(lap));
        }
    }

    #[test]
    fn spsc_transfers_everything_in_order_across_threads() {
        const N: u64 = 100_000;
        let ring: Arc<SpscRing<u64>> = Arc::new(SpscRing::with_capacity(64));
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || {
                for v in 0..N {
                    let mut item = v;
                    loop {
                        match ring.try_push(item) {
                            Ok(()) => break,
                            Err(back) => {
                                item = back;
                                std::thread::yield_now();
                            }
                        }
                    }
                }
            })
        };
        let mut expected = 0u64;
        while expected < N {
            if let Some(v) = ring.pop() {
                assert_eq!(v, expected, "SPSC must preserve order");
                expected += 1;
            } else {
                std::thread::yield_now();
            }
        }
        producer.join().expect("producer");
        assert!(ring.is_empty());
    }

    #[test]
    fn mpsc_fifo_single_thread_and_full_edge() {
        let r: MpscRing<u64> = MpscRing::with_capacity(4);
        for v in 0..4u64 {
            assert!(r.try_push(v).is_ok());
        }
        assert_eq!(r.try_push(99), Err(99), "full ring refuses");
        for v in 0..4u64 {
            assert_eq!(r.pop(), Some(v));
        }
        assert_eq!(r.pop(), None);
        for lap in 0..10u64 {
            assert!(r.try_push(lap).is_ok());
            assert_eq!(r.pop(), Some(lap));
        }
    }

    #[test]
    fn mpsc_delivers_every_message_exactly_once() {
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 20_000;
        let ring: Arc<MpscRing<u64>> = Arc::new(MpscRing::with_capacity(32));
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        let mut item = p * PER_PRODUCER + i;
                        loop {
                            match ring.try_push(item) {
                                Ok(()) => break,
                                Err(back) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        let total = PRODUCERS * PER_PRODUCER;
        let mut seen = vec![false; total as usize];
        let mut last_per_producer = vec![None::<u64>; PRODUCERS as usize];
        let mut received = 0u64;
        while received < total {
            if let Some(v) = ring.pop() {
                assert!(!seen[v as usize], "duplicate delivery of {v}");
                seen[v as usize] = true;
                // Per-producer order is preserved (MPSC interleaves
                // producers but never reorders one producer's stream).
                let producer = (v / PER_PRODUCER) as usize;
                if let Some(prev) = last_per_producer[producer] {
                    assert!(v > prev, "producer {producer} reordered");
                }
                last_per_producer[producer] = Some(v);
                received += 1;
            } else {
                std::thread::yield_now();
            }
        }
        for h in handles {
            h.join().expect("producer");
        }
        assert!(seen.iter().all(|&s| s), "every message arrived");
        assert!(ring.is_empty());
    }

    #[test]
    fn drop_releases_queued_items() {
        // `Arc` payloads: leaked slots would show as a refcount leak.
        let payload = Arc::new(42u64);
        {
            let r: SpscRing<Arc<u64>> = SpscRing::with_capacity(8);
            for _ in 0..5 {
                r.try_push(Arc::clone(&payload)).expect("space");
            }
            assert_eq!(Arc::strong_count(&payload), 6);
        }
        assert_eq!(Arc::strong_count(&payload), 1, "SpscRing dropped items");
        {
            let r: MpscRing<Arc<u64>> = MpscRing::with_capacity(8);
            for _ in 0..5 {
                r.try_push(Arc::clone(&payload)).expect("space");
            }
            assert_eq!(Arc::strong_count(&payload), 6);
        }
        assert_eq!(Arc::strong_count(&payload), 1, "MpscRing dropped items");
    }
}
