pub fn bench_crate_marker() {}
