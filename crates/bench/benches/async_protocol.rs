//! Cost of the asynchronous message-protocol simulator per tick, across
//! latency and loss settings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlb_core::Params;
use dlb_net::{AsyncConfig, AsyncNetwork};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn run(n: usize, latency: u64, loss: f64, ticks: u64) -> AsyncNetwork {
    let params = Params::new(n, 2, 1.3, 4).unwrap();
    let mut cfg = AsyncConfig::reliable(params, latency, 3);
    cfg.control_loss = loss;
    let mut net = AsyncNetwork::new(cfg);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    for t in 0..ticks {
        let actions: Vec<i8> = (0..n)
            .map(|_| if rng.gen_bool(0.5) { 1 } else { -1 })
            .collect();
        net.tick(t, &actions);
    }
    net.quiesce();
    net
}

fn bench_async(c: &mut Criterion) {
    let mut group = c.benchmark_group("async_protocol_2k_ticks");
    group.sample_size(10);
    for &(latency, loss) in &[(1u64, 0.0f64), (16, 0.0), (4, 0.2)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("lat{latency}_loss{loss}")),
            &(latency, loss),
            |b, &(latency, loss)| b.iter(|| run(64, latency, loss, 2_000)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_async);
criterion_main!(benches);
