//! Cost of the closed-loop branching-process driver (the speedup
//! experiment's inner loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlb_core::{Params, SimpleCluster};
use dlb_workload::branching::{run_branching, Offspring};

fn bench_branching(c: &mut Criterion) {
    let mut group = c.benchmark_group("branching_tree");
    group.sample_size(10);
    let offspring = Offspring::bernoulli(2, 0.49);
    for &n in &[8usize, 32] {
        let params = Params::new(n, 2, 1.3, 4).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut cluster = SimpleCluster::new(params, 1);
                run_branching(&mut cluster, &offspring, 100, 1_000_000, 5)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_branching);
criterion_main!(benches);
