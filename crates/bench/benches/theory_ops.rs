//! Cost of the analysis layer: fixed points, operator iteration, cost
//! bounds and occupancy probabilities.

use criterion::{criterion_group, criterion_main, Criterion};
use dlb_theory::compgraph::occupancy_prob;
use dlb_theory::operators::{fix, iterate_to_fixpoint};
use dlb_theory::{AlgoParams, CostBounds};
use std::hint::black_box;

fn bench_theory(c: &mut Criterion) {
    c.bench_function("theory/fix_closed_form", |b| {
        b.iter(|| black_box(fix(black_box(1024), black_box(4), black_box(1.5))))
    });
    c.bench_function("theory/iterate_to_fixpoint", |b| {
        b.iter(|| black_box(iterate_to_fixpoint(1024, 4, 1.5, 1.0)))
    });
    c.bench_function("theory/lemma6_upper", |b| {
        let cb = CostBounds::for_params(&AlgoParams::new(64, 1, 1.1).unwrap());
        b.iter(|| black_box(cb.lemma6_upper(black_box(1000), black_box(500), 100_000)))
    });
    c.bench_function("theory/occupancy_prob_t150_p35", |b| {
        b.iter(|| black_box(occupancy_prob(black_box(150), black_box(20), black_box(35))))
    });
}

criterion_group!(benches, bench_theory);
criterion_main!(benches);
