//! Per-step cost of the full virtual-class algorithm vs the practical
//! variant across network sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlb_core::{Cluster, LoadBalancer, LoadEvent, Params, SimpleCluster};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn events(n: usize, seed: u64) -> Vec<Vec<LoadEvent>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..64)
        .map(|_| {
            (0..n)
                .map(|_| match rng.gen_range(0..3) {
                    0 => LoadEvent::Generate,
                    1 => LoadEvent::Consume,
                    _ => LoadEvent::Idle,
                })
                .collect()
        })
        .collect()
}

fn bench_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_step");
    for &n in &[16usize, 64, 256] {
        let params = Params::paper_section7(n);
        let evs = events(n, 7);
        group.bench_with_input(BenchmarkId::new("full", n), &n, |b, _| {
            let mut cluster = Cluster::new(params, 1);
            let mut k = 0;
            b.iter(|| {
                cluster.step(&evs[k % evs.len()]);
                k += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("simple", n), &n, |b, _| {
            let mut cluster = SimpleCluster::new(params, 1);
            let mut k = 0;
            b.iter(|| {
                cluster.step(&evs[k % evs.len()]);
                k += 1;
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_steps);
criterion_main!(benches);
