//! Scaling of the practical variant to 1024 processors (the paper's
//! largest configuration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dlb_core::{Params, SimpleCluster};
use dlb_experiments::quality::{paper_trace, run_on_trace};

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_simple_500steps");
    group.sample_size(10);
    for &n in &[64usize, 256, 1024] {
        let trace = paper_trace(n, 500, 9);
        let params = Params::paper_section7(n);
        group.throughput(Throughput::Elements((n * 500) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| run_on_trace(&mut SimpleCluster::new(params, 1), &trace))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
