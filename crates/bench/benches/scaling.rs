//! Scaling of both simulator variants with processor count.
//!
//! The practical variant ([`SimpleCluster`]) runs the paper's largest
//! configuration (1024) and beyond; the full virtual-class variant
//! ([`Cluster`]) is the PR-4 target — its flat `d`/`b` arena and active
//! class lists make n = 4096 tractable (the dense version was O(n²) per
//! balance operation and did not finish this matrix in reasonable time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dlb_core::{Cluster, Params, SimpleCluster};
use dlb_experiments::quality::{paper_trace, run_on_trace};

/// Drops the large sizes under `DLB_BENCH_QUICK` (the CI smoke gate only
/// proves the benches compile and run; big-n numbers come from real runs).
fn sizes(all: &[usize]) -> Vec<usize> {
    let quick = std::env::var_os("DLB_BENCH_QUICK").is_some();
    all.iter()
        .copied()
        .filter(|&n| !quick || n <= 256)
        .collect()
}

fn bench_scaling_simple(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_simple_500steps");
    for n in sizes(&[64, 256, 512, 1024, 4096]) {
        let trace = paper_trace(n, 500, 9);
        let params = Params::paper_section7(n);
        group.sample_size(if n >= 4096 { 3 } else { 10 });
        group.throughput(Throughput::Elements((n * 500) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| run_on_trace(&mut SimpleCluster::new(params, 1), &trace))
        });
    }
    group.finish();
}

fn bench_scaling_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_full_500steps");
    for n in sizes(&[64, 512, 4096]) {
        let trace = paper_trace(n, 500, 9);
        let params = Params::paper_section7(n);
        group.sample_size(if n >= 4096 { 2 } else { 10 });
        group.throughput(Throughput::Elements((n * 500) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| run_on_trace(&mut Cluster::new(params, 1), &trace))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling_simple, bench_scaling_full);
criterion_main!(benches);
