//! Cost of the three Figure 6 engines: exact moment recursion (O(t)),
//! computation-graph Monte-Carlo, and exhaustive enumeration.

use criterion::{criterion_group, criterion_main, Criterion};
use dlb_theory::compgraph::graph_monte_carlo;
use dlb_theory::moments::{enumerate_exact, vd_curve};
use std::hint::black_box;

fn bench_engines(c: &mut Criterion) {
    c.bench_function("variation/moments_exact_150steps", |b| {
        b.iter(|| black_box(vd_curve(black_box(34), 2, 1.2, 150)))
    });
    let mut group = c.benchmark_group("variation/slow_engines");
    group.sample_size(10);
    group.bench_function("graph_mc_1k_runs", |b| {
        b.iter(|| black_box(graph_monte_carlo(34, 1.2, 150, 1_000, 3)))
    });
    group.bench_function("enumerate_p3_t6", |b| {
        b.iter(|| black_box(enumerate_exact(3, 1, 1.2, 6)))
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
