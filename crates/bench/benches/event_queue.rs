//! Calendar queue vs binary heap on the asynchronous simulator's event
//! traffic shape: most events land a constant `latency` ahead of the
//! clock, a few timeout echoes further out, drained in delivery order.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlb_net::CalendarQueue;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One synthetic workload step: at every tick, push a latency-shaped
/// batch and drain everything due.  Returns a checksum so the drain
/// cannot be optimised away.
fn traffic(rng: &mut ChaCha8Rng, ticks: u64) -> Vec<(u64, u64, u32)> {
    let mut pushes = Vec::new();
    let mut stamp = 0u64;
    for t in 0..ticks {
        for _ in 0..rng.gen_range(0..6) {
            // Mostly `now + latency`, occasionally a timeout echo.
            let delay = if rng.gen_bool(0.9) {
                4
            } else {
                rng.gen_range(16..256)
            };
            stamp += 1;
            pushes.push((t, t + delay, stamp as u32));
        }
    }
    pushes
}

fn run_calendar(pushes: &[(u64, u64, u32)], ticks: u64) -> u64 {
    let mut q: CalendarQueue<u32> = CalendarQueue::new();
    let mut acc = 0u64;
    let mut i = 0;
    for t in 0..ticks {
        while i < pushes.len() && pushes[i].0 == t {
            q.push(pushes[i].1, pushes[i].2);
            i += 1;
        }
        while let Some((time, id)) = q.pop_due(t) {
            acc = acc.wrapping_mul(31).wrapping_add(time ^ id as u64);
        }
    }
    while let Some((time, id)) = q.pop_due(u64::MAX) {
        acc = acc.wrapping_mul(31).wrapping_add(time ^ id as u64);
    }
    acc
}

fn run_heap(pushes: &[(u64, u64, u32)], ticks: u64) -> u64 {
    let mut q: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    let mut acc = 0u64;
    let mut i = 0;
    let mut drain = |q: &mut BinaryHeap<Reverse<(u64, u32)>>, t: u64| {
        while let Some(&Reverse((time, _))) = q.peek() {
            if time > t {
                break;
            }
            let Reverse((time, id)) = q.pop().expect("peeked");
            acc = acc.wrapping_mul(31).wrapping_add(time ^ id as u64);
        }
    };
    for t in 0..ticks {
        while i < pushes.len() && pushes[i].0 == t {
            q.push(Reverse((pushes[i].1, pushes[i].2)));
            i += 1;
        }
        drain(&mut q, t);
    }
    drain(&mut q, u64::MAX);
    acc
}

fn bench_event_queue(c: &mut Criterion) {
    let quick = std::env::var_os("DLB_BENCH_QUICK").is_some();
    let ticks: u64 = if quick { 5_000 } else { 100_000 };
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let pushes = traffic(&mut rng, ticks);
    // Both drains must observe the identical delivery order.
    assert_eq!(run_calendar(&pushes, ticks), run_heap(&pushes, ticks));

    let mut group = c.benchmark_group("event_queue");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("calendar", ticks), &ticks, |b, &ticks| {
        b.iter(|| run_calendar(&pushes, ticks))
    });
    group.bench_with_input(BenchmarkId::new("heap", ticks), &ticks, |b, &ticks| {
        b.iter(|| run_heap(&pushes, ticks))
    });
    group.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
