//! Branch & bound throughput: TSP and N-Queens on the balanced runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlb_bnb::nqueens::NQueens;
use dlb_bnb::tsp::Tsp;
use dlb_bnb::Solver;

fn bench_bnb(c: &mut Criterion) {
    let mut group = c.benchmark_group("bnb");
    group.sample_size(10);
    let tsp = Tsp::random(11, 5);
    for workers in [1usize, 4] {
        group.bench_with_input(BenchmarkId::new("tsp11", workers), &workers, |b, &w| {
            b.iter(|| Solver::with_workers(w.max(2)).solve(&tsp))
        });
    }
    let queens = NQueens::new(9);
    group.bench_function("nqueens9", |b| {
        b.iter(|| Solver::with_workers(4).count_solutions(&queens))
    });
    group.finish();
}

criterion_group!(benches, bench_bnb);
criterion_main!(benches);
