//! End-to-end cost of one Figure 7/8 run (64 processors × 500 steps of
//! the §7 workload through the full algorithm), per (δ, f).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlb_core::{Cluster, Params};
use dlb_experiments::quality::{paper_trace, run_on_trace};

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_run");
    group.sample_size(10);
    let trace = paper_trace(64, 500, 42);
    for &(delta, f) in &[(1usize, 1.1f64), (1, 1.8), (4, 1.1), (4, 1.8)] {
        let params = Params::new(64, delta, f, 4).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("d{delta}_f{f}")),
            &params,
            |b, params| {
                b.iter(|| {
                    let mut cluster = Cluster::new(*params, 1);
                    run_on_trace(&mut cluster, &trace)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
