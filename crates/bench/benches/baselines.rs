//! Per-run cost of every strategy on the identical §7 trace (the work
//! behind the baseline-comparison table).

use criterion::{criterion_group, criterion_main, Criterion};
use dlb_baselines::{Gradient, NoBalance, RandomScatter, Rsu91};
use dlb_core::{Cluster, Params, SimpleCluster};
use dlb_experiments::quality::{paper_trace, run_on_trace};
use dlb_net::Topology;

fn bench_baselines(c: &mut Criterion) {
    let n = 64;
    let trace = paper_trace(n, 500, 11);
    let params = Params::paper_section7(n);
    let mut group = c.benchmark_group("baselines_500steps");
    group.sample_size(10);
    group.bench_function("spaa93_full", |b| {
        b.iter(|| run_on_trace(&mut Cluster::new(params, 1), &trace))
    });
    group.bench_function("spaa93_simple", |b| {
        b.iter(|| run_on_trace(&mut SimpleCluster::new(params, 1), &trace))
    });
    group.bench_function("rsu91", |b| {
        b.iter(|| run_on_trace(&mut Rsu91::new(n, 1), &trace))
    });
    group.bench_function("random_scatter", |b| {
        b.iter(|| run_on_trace(&mut RandomScatter::new(n, 1), &trace))
    });
    group.bench_function("gradient", |b| {
        b.iter(|| {
            run_on_trace(
                &mut Gradient::new(Topology::Torus2D { w: 8, h: 8 }, 2, 8),
                &trace,
            )
        })
    });
    group.bench_function("no_balance", |b| {
        b.iter(|| run_on_trace(&mut NoBalance::new(n), &trace))
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
