//! Cost of the balancing primitive (the δ+1-way snake distribution of the
//! appendix) as class count and group size vary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlb_core::balance::{distribute_capped, distribute_classes, even_shares};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench_distribute(c: &mut Criterion) {
    let mut group = c.benchmark_group("balance_op/distribute_classes");
    for &(classes, members) in &[(64usize, 2usize), (64, 5), (256, 5), (1024, 9)] {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let totals: Vec<u64> = (0..classes).map(|_| rng.gen_range(0..50)).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{classes}cls_{members}mem")),
            &(totals, members),
            |b, (totals, members)| {
                b.iter(|| {
                    let mut running = vec![0u64; *members];
                    black_box(distribute_classes(
                        black_box(totals),
                        *members,
                        &mut running,
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_even_shares(c: &mut Criterion) {
    c.bench_function("balance_op/even_shares_1k", |b| {
        b.iter(|| black_box(even_shares(black_box(100_003), black_box(9))))
    });
    c.bench_function("balance_op/distribute_capped", |b| {
        let caps = vec![4u64; 16];
        b.iter(|| black_box(distribute_capped(black_box(40), black_box(&caps))))
    });
}

criterion_group!(benches, bench_distribute, bench_even_shares);
criterion_main!(benches);
