//! Cost of the balancing primitive (the δ+1-way snake distribution of the
//! appendix) as class count and group size vary, plus the allocation-free
//! `_into` variants the PR-4 engines call on their hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dlb_core::balance::{
    distribute_capped, distribute_capped_into, distribute_classes, distribute_classes_flat_with,
    even_shares, even_shares_into,
};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn class_totals(classes: usize) -> Vec<u64> {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    (0..classes).map(|_| rng.gen_range(0..50)).collect()
}

fn bench_distribute(c: &mut Criterion) {
    let mut group = c.benchmark_group("balance_op/distribute_classes");
    for &(classes, members) in &[(64usize, 2usize), (64, 5), (256, 5), (512, 9), (1024, 9)] {
        let totals = class_totals(classes);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{classes}cls_{members}mem")),
            &(totals, members),
            |b, (totals, members)| {
                b.iter(|| {
                    let mut running = vec![0u64; *members];
                    black_box(distribute_classes(
                        black_box(totals),
                        *members,
                        &mut running,
                    ))
                })
            },
        );
    }
    group.finish();

    // The flat scratch-buffer variant the optimized Cluster uses: same
    // distribution, zero allocations per call once the buffers are warm.
    let mut group = c.benchmark_group("balance_op/distribute_classes_flat");
    for &(classes, members) in &[(64usize, 2usize), (512, 9), (4096, 9)] {
        let totals = class_totals(classes);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{classes}cls_{members}mem")),
            &(totals, members),
            |b, (totals, members)| {
                let mut running = vec![0u64; *members];
                let mut out = Vec::new();
                let mut order = Vec::new();
                b.iter(|| {
                    running.iter_mut().for_each(|r| *r = 0);
                    distribute_classes_flat_with(
                        black_box(totals),
                        *members,
                        &mut running,
                        &mut out,
                        &mut order,
                    );
                    black_box(&out);
                })
            },
        );
    }
    group.finish();
}

fn bench_even_shares(c: &mut Criterion) {
    c.bench_function("balance_op/even_shares_1k", |b| {
        b.iter(|| black_box(even_shares(black_box(100_003), black_box(9))))
    });
    c.bench_function("balance_op/even_shares_into", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            even_shares_into(black_box(100_003), black_box(9), &mut out);
            black_box(&out);
        })
    });
    c.bench_function("balance_op/distribute_capped", |b| {
        let caps = vec![4u64; 16];
        b.iter(|| black_box(distribute_capped(black_box(40), black_box(&caps))))
    });
    c.bench_function("balance_op/distribute_capped_into", |b| {
        let caps = vec![4u64; 16];
        let mut out = Vec::new();
        b.iter(|| {
            distribute_capped_into(black_box(40), black_box(&caps), &mut out);
            black_box(&out);
        })
    });
}

criterion_group!(benches, bench_distribute, bench_even_shares);
criterion_main!(benches);
