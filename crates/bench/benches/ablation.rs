//! Ablation costs: exchange policy (Strict vs the appendix's literal
//! Aggressive rule) and partner locality on a torus.

use criterion::{criterion_group, criterion_main, Criterion};
use dlb_core::{Cluster, ExchangePolicy, Params};
use dlb_experiments::quality::{paper_trace, run_on_trace};
use dlb_net::{PartnerMode, TopoCluster, Topology};

fn bench_ablation(c: &mut Criterion) {
    let n = 64;
    let trace = paper_trace(n, 500, 21);
    let params = Params::paper_section7(n);
    let mut group = c.benchmark_group("ablation_500steps");
    group.sample_size(10);
    group.bench_function("exchange_strict", |b| {
        b.iter(|| run_on_trace(&mut Cluster::new(params, 1), &trace))
    });
    group.bench_function("exchange_aggressive", |b| {
        let p = params.with_exchange(ExchangePolicy::Aggressive);
        b.iter(|| run_on_trace(&mut Cluster::new(p, 1), &trace))
    });
    let torus = Topology::Torus2D { w: 8, h: 8 };
    group.bench_function("topo_global", |b| {
        b.iter(|| {
            run_on_trace(
                &mut TopoCluster::new(params, torus.clone(), PartnerMode::GlobalRandom, 1),
                &trace,
            )
        })
    });
    group.bench_function("topo_neighbors", |b| {
        b.iter(|| {
            run_on_trace(
                &mut TopoCluster::new(params, torus.clone(), PartnerMode::Neighbors, 1),
                &trace,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
