//! Property tests: the event-driven sparse path is *bit-identical* to
//! the dense one.
//!
//! For every engine (`Cluster`, `SimpleCluster`, `DenseCluster`), every
//! sparse pattern, `step_jobs ∈ {1, 4}` and randomly drawn fault plans
//! with crashes/rejoins, a run through `step_sparse`/`step_sparse_masked`
//! must reproduce the dense `step`/`step_masked` run exactly: final
//! loads, metrics, serialized trace bytes — and for the full engine the
//! complete snapshot (the d/b class matrices included).  A third leg
//! records the workload into an [`EventTrace`] and replays it densely,
//! so the sparse stream is also checked against an independently
//! serialized record.

use dlb_core::{Cluster, DenseCluster, LoadBalancer, Metrics, Params, SimpleCluster};
use dlb_faults::{CrashEvent, FaultInjector, FaultPlan};
use dlb_trace::BufferSink;
use dlb_workload::sparse::{SparseActivity, SparsePattern, SparseWorkload};
use dlb_workload::trace::EventTrace;
use dlb_workload::Workload;
use proptest::prelude::*;

/// Folds three raw draws into one of the four sparse patterns, always
/// landing on valid parameters.
fn build_pattern(kind: u8, a: u32, b: u32, c: u32) -> SparsePattern {
    match kind % 4 {
        0 => {
            let lo = 1 + b % 7;
            SparsePattern::Phase {
                work: 1 + a % 4,
                gap: (lo, lo + c % 8),
            }
        }
        1 => SparsePattern::Hotspot {
            period: 1 + a % 11,
            consumer_gap: 1 + b % 9,
        },
        2 => SparsePattern::Bursty {
            burst: 1 + a % 4,
            quiet: 1 + b % 19,
            quiet_gap: 1 + c % 11,
        },
        _ => SparsePattern::Arrivals {
            arrival_gap: 1 + a % 9,
            service_gap: 1 + b % 5,
        },
    }
}

/// Clamps raw crash draws into a valid plan over `n` processors
/// (`recover` draw 0 means "never rejoins").
fn build_plan(raw: &[(usize, u64, u64)], n: usize) -> Option<FaultPlan> {
    if raw.is_empty() {
        return None;
    }
    let crashes: Vec<CrashEvent> = raw
        .iter()
        .map(|&(proc, at, recover)| CrashEvent {
            proc: proc % n,
            at,
            recover_at: (recover > 0).then_some(at + recover),
        })
        .collect();
    Some(FaultPlan {
        crashes,
        ..FaultPlan::reliable()
    })
}

fn make_engine(kind: u8, n: usize, seed: u64, step_jobs: usize) -> Box<dyn LoadBalancer> {
    let params = Params::paper_section7(n);
    let mut b: Box<dyn LoadBalancer> = match kind % 3 {
        0 => Box::new(Cluster::new(params, seed)),
        1 => Box::new(SimpleCluster::new(params, seed)),
        _ => Box::new(DenseCluster::new(params, seed)),
    };
    b.set_step_jobs(step_jobs);
    b
}

/// Final loads, metrics and the serialized trace of one run.
type Outcome = (Vec<u64>, Metrics, String);

fn run_dense(
    mut balancer: Box<dyn LoadBalancer>,
    pattern: SparsePattern,
    wseed: u64,
    steps: usize,
    injector: Option<&FaultInjector>,
) -> Outcome {
    let buf = BufferSink::new();
    balancer.set_trace_sink(buf.handle());
    let n = balancer.n();
    let mut workload = SparseActivity::new(n, pattern, wseed);
    let mut events = Vec::new();
    for t in 0..steps {
        workload.events_at(t, &mut events);
        match injector {
            Some(inj) => balancer.step_masked(&events, &inj.mask_at(t as u64)),
            None => balancer.step(&events),
        }
    }
    finish(balancer, buf)
}

fn run_sparse(
    mut balancer: Box<dyn LoadBalancer>,
    pattern: SparsePattern,
    wseed: u64,
    steps: usize,
    injector: Option<&FaultInjector>,
) -> Outcome {
    let buf = BufferSink::new();
    balancer.set_trace_sink(buf.handle());
    let n = balancer.n();
    let mut workload = SparseActivity::new(n, pattern, wseed);
    let mut active = Vec::new();
    for t in 0..steps {
        workload.active_at(t, &mut active);
        match injector {
            Some(inj) => balancer.step_sparse_masked(&active, &inj.mask_at(t as u64)),
            None => balancer.step_sparse(&active),
        }
    }
    finish(balancer, buf)
}

/// Replays an independently recorded [`EventTrace`] of the same
/// workload through the dense path — the serialization oracle.
fn run_replayed(
    mut balancer: Box<dyn LoadBalancer>,
    pattern: SparsePattern,
    wseed: u64,
    steps: usize,
    injector: Option<&FaultInjector>,
) -> Outcome {
    let buf = BufferSink::new();
    balancer.set_trace_sink(buf.handle());
    let n = balancer.n();
    let mut source = SparseActivity::new(n, pattern, wseed);
    let trace = EventTrace::record(&mut source, steps);
    let mut replay = trace.replay();
    let mut events = Vec::new();
    for t in 0..steps {
        replay.events_at(t, &mut events);
        match injector {
            Some(inj) => balancer.step_masked(&events, &inj.mask_at(t as u64)),
            None => balancer.step(&events),
        }
    }
    finish(balancer, buf)
}

fn finish(balancer: Box<dyn LoadBalancer>, buf: BufferSink) -> Outcome {
    let loads = balancer.loads();
    let metrics = *balancer.metrics();
    let bytes: String = buf
        .take()
        .iter()
        .map(|e| e.to_line())
        .collect::<Vec<_>>()
        .join("\n");
    (loads, metrics, bytes)
}

proptest! {
    /// The core bit-identity property across engines, patterns,
    /// parallelism and crash schedules.
    #[test]
    fn sparse_path_is_bit_identical_to_dense(
        kind in 0u8..4,
        a in 0u32..1_000,
        b in 0u32..1_000,
        c in 0u32..1_000,
        n in 8usize..40,
        raw_crashes in prop::collection::vec((0usize..4096, 0u64..120, 0u64..80), 0..3),
        engine in 0u8..3,
        wide in any::<bool>(),
        eseed in 0u64..1_000,
        wseed in 0u64..1_000,
        steps in 120usize..240,
    ) {
        let pattern = build_pattern(kind, a, b, c);
        let step_jobs = if wide { 4 } else { 1 };
        let injector = build_plan(&raw_crashes, n)
            .map(|p| FaultInjector::new(p, n).expect("valid plan"));
        let inj = injector.as_ref();
        let dense = run_dense(make_engine(engine, n, eseed, step_jobs), pattern, wseed, steps, inj);
        let sparse = run_sparse(make_engine(engine, n, eseed, step_jobs), pattern, wseed, steps, inj);
        prop_assert_eq!(&dense.0, &sparse.0, "loads diverge");
        prop_assert_eq!(&dense.1, &sparse.1, "metrics diverge");
        prop_assert_eq!(&dense.2, &sparse.2, "trace bytes diverge");
        // Serialization oracle: an EventTrace recorded from a same-seed
        // workload, replayed densely, lands in the same state.
        let replayed = run_replayed(make_engine(engine, n, eseed, step_jobs), pattern, wseed, steps, inj);
        prop_assert_eq!(&dense.0, &replayed.0, "replay loads diverge");
        prop_assert_eq!(&dense.1, &replayed.1, "replay metrics diverge");
    }

    /// For the full engine the *entire* snapshot — including the d/b
    /// virtual-class matrices — must match, not just the load vector.
    #[test]
    fn full_engine_snapshots_match_exactly(
        kind in 0u8..4,
        a in 0u32..1_000,
        b in 0u32..1_000,
        c in 0u32..1_000,
        wide in any::<bool>(),
        eseed in 0u64..1_000,
        wseed in 0u64..1_000,
    ) {
        let n = 24;
        let steps = 200;
        let pattern = build_pattern(kind, a, b, c);
        let step_jobs = if wide { 4 } else { 1 };
        let params = Params::paper_section7(n);
        let mut x = Cluster::new(params, eseed);
        let mut y = Cluster::new(params, eseed);
        x.set_step_jobs(step_jobs);
        y.set_step_jobs(step_jobs);
        let mut dense_w = SparseActivity::new(n, pattern, wseed);
        let mut sparse_w = SparseActivity::new(n, pattern, wseed);
        let mut events = Vec::new();
        let mut active = Vec::new();
        for t in 0..steps {
            dense_w.events_at(t, &mut events);
            x.step(&events);
            sparse_w.active_at(t, &mut active);
            y.step_sparse(&active);
        }
        prop_assert_eq!(x.snapshot(), y.snapshot());
    }
}
