//! Workload pattern generators for the SPAA'93 load balancing
//! reproduction.
//!
//! §2 of the paper makes *no* assumption about how packets are generated
//! and consumed — the theorems hold for any load pattern.  The experiments
//! of §7 use a specific synthetic *phase model* ([`phase::PhaseWorkload`]);
//! this crate implements that model plus a family of other patterns
//! ([`patterns`]) used by the analysis sections, the baseline comparisons
//! and the stress tests, and a record/replay facility ([`trace`]).
//!
//! Every pattern implements [`Workload`]: a deterministic, seeded stream
//! of per-processor [`LoadEvent`]s.

pub mod branching;
pub mod patterns;
pub mod phase;
pub mod service;
pub mod sparse;
pub mod trace;

use dlb_core::{LoadBalancer, LoadEvent};

/// A deterministic stream of per-processor load events.
pub trait Workload {
    /// Number of processors this workload drives.
    fn n(&self) -> usize;

    /// Fills `out` (resized to `n`) with the events of global step `t`.
    /// Must be called with strictly increasing `t` starting at 0.
    fn events_at(&mut self, t: usize, out: &mut Vec<LoadEvent>);
}

/// Boxed workloads forward, so a `Box<dyn Workload>` built from runtime
/// configuration can drive the same generic entry points (for example
/// [`trace::EventTrace::record`]) as a concrete pattern.
impl<W: Workload + ?Sized> Workload for Box<W> {
    fn n(&self) -> usize {
        (**self).n()
    }

    fn events_at(&mut self, t: usize, out: &mut Vec<LoadEvent>) {
        (**self).events_at(t, out);
    }
}

/// Drives a balancer with a workload for `steps` global time steps,
/// invoking `observe(t, balancer)` after each step.
pub fn drive<B: LoadBalancer + ?Sized, W: Workload + ?Sized>(
    balancer: &mut B,
    workload: &mut W,
    steps: usize,
    mut observe: impl FnMut(usize, &B),
) {
    assert_eq!(
        balancer.n(),
        workload.n(),
        "balancer/workload size mismatch"
    );
    let mut events = Vec::with_capacity(balancer.n());
    for t in 0..steps {
        workload.events_at(t, &mut events);
        balancer.step(&events);
        observe(t, balancer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::{Params, SimpleCluster};

    #[test]
    fn drive_runs_observer_each_step() {
        let params = Params::paper_section7(4);
        let mut balancer = SimpleCluster::new(params, 1);
        let mut workload = patterns::UniformRandom::new(4, 0.5, 0.2, 9);
        let mut seen = 0usize;
        drive(&mut balancer, &mut workload, 25, |t, b| {
            assert_eq!(t, seen);
            assert_eq!(b.n(), 4);
            seen += 1;
        });
        assert_eq!(seen, 25);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn drive_rejects_mismatched_sizes() {
        let params = Params::paper_section7(4);
        let mut balancer = SimpleCluster::new(params, 1);
        let mut workload = patterns::UniformRandom::new(8, 0.5, 0.2, 9);
        drive(&mut balancer, &mut workload, 1, |_, _| {});
    }
}
