//! Closed-loop branching-process computations.
//!
//! The open-loop patterns in [`crate::patterns`] fix the event schedule in
//! advance.  Real applications — the backtrack search and branch & bound
//! computations the paper's introduction motivates — are *closed-loop*: a
//! processor consumes a packet only when it holds one, and consuming a
//! packet spawns a random number of children **on the same processor**.
//! Without balancing, all descendants of the root stay where the root
//! was; with balancing, the tree spreads.  The figure of merit is the
//! *makespan*: global steps until the whole tree is consumed when every
//! processor can consume one packet per step.
//!
//! This is the workload class where load balancing actually buys wall
//! time, so it backs the speedup experiment (`closed_loop` binary).

use dlb_core::batch::{step_batch, BatchEvent};
use dlb_core::LoadBalancer;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Offspring distribution of the branching process: `probs[k]` is the
/// probability of spawning `k` children on consumption.
#[derive(Debug, Clone)]
pub struct Offspring {
    probs: Vec<f64>,
}

impl Offspring {
    /// Builds a distribution; probabilities must be non-negative and sum
    /// to 1 (±1e-9).
    pub fn new(probs: Vec<f64>) -> Result<Self, String> {
        if probs.is_empty() {
            return Err("need at least one outcome".into());
        }
        if probs.iter().any(|&p| !(0.0..=1.0).contains(&p)) {
            return Err(format!("probabilities out of range: {probs:?}"));
        }
        let total: f64 = probs.iter().sum();
        if (total - 1.0).abs() > 1e-9 {
            return Err(format!("probabilities sum to {total}, not 1"));
        }
        Ok(Offspring { probs })
    }

    /// A subcritical-by-depth tree: 0 children with probability
    /// `1 − p_branch`, otherwise `arity` children.  Mean offspring
    /// `p_branch · arity`.
    pub fn bernoulli(arity: usize, p_branch: f64) -> Self {
        let mut probs = vec![0.0; arity + 1];
        probs[0] = 1.0 - p_branch;
        probs[arity] = p_branch;
        Offspring::new(probs).expect("valid by construction")
    }

    /// Expected number of children.
    pub fn mean(&self) -> f64 {
        self.probs
            .iter()
            .enumerate()
            .map(|(k, &p)| k as f64 * p)
            .sum()
    }

    fn sample(&self, rng: &mut impl Rng) -> u32 {
        let mut x: f64 = rng.gen();
        for (k, &p) in self.probs.iter().enumerate() {
            if x < p {
                return k as u32;
            }
            x -= p;
        }
        (self.probs.len() - 1) as u32
    }
}

/// Result of a closed-loop branching run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchingOutcome {
    /// Global steps until the system drained (or `max_steps`).
    pub makespan: usize,
    /// Packets processed in total.
    pub processed: u64,
    /// Largest single-processor load observed.
    pub peak_load: u64,
    /// True if the tree was fully consumed within `max_steps`.
    pub drained: bool,
}

/// Runs a branching-process computation to completion on a balancer.
///
/// `roots` initial packets start on processor 0.  Each step every
/// processor holding at least one packet consumes one and spawns
/// offspring locally (one batch event per §2's multi-packet step);
/// processors without load idle — *their cycles are wasted*, which is
/// what the balancer is supposed to prevent.
pub fn run_branching<B: LoadBalancer + ?Sized>(
    balancer: &mut B,
    offspring: &Offspring,
    roots: u32,
    max_steps: usize,
    seed: u64,
) -> BranchingOutcome {
    let n = balancer.n();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut batches = vec![BatchEvent::idle(); n];

    // Seed the roots on processor 0.
    batches[0] = BatchEvent::gen(roots);
    step_batch(balancer, &batches);

    let mut peak = 0u64;
    for step in 0..max_steps {
        let loads = balancer.loads();
        peak = peak.max(loads.iter().copied().max().unwrap_or(0));
        if loads.iter().all(|&l| l == 0) {
            return BranchingOutcome {
                makespan: step,
                processed: balancer.metrics().consumed,
                peak_load: peak,
                drained: true,
            };
        }
        for (b, &l) in batches.iter_mut().zip(loads.iter()) {
            // A concurrent balance triggered by another processor's
            // generation can still move the last packet away before the
            // consume lands; the balancer's own `consumed` counter is the
            // ground truth.
            *b = if l > 0 {
                BatchEvent {
                    generate: offspring.sample(&mut rng),
                    consume: 1,
                }
            } else {
                BatchEvent::idle()
            };
        }
        step_batch(balancer, &batches);
    }
    BranchingOutcome {
        makespan: max_steps,
        processed: balancer.metrics().consumed,
        peak_load: peak,
        drained: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::{Cluster, Params, SimpleCluster};

    #[test]
    fn offspring_validation() {
        assert!(Offspring::new(vec![]).is_err());
        assert!(Offspring::new(vec![0.5, 0.4]).is_err(), "sums to 0.9");
        assert!(Offspring::new(vec![0.5, -0.5, 1.0]).is_err());
        let d = Offspring::new(vec![0.25, 0.5, 0.25]).unwrap();
        assert!((d.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bernoulli_mean() {
        let d = Offspring::bernoulli(2, 0.45);
        assert!((d.mean() - 0.9).abs() < 1e-12, "subcritical");
    }

    #[test]
    fn subcritical_tree_drains() {
        let params = Params::new(8, 1, 1.3, 4).unwrap();
        let mut cluster = SimpleCluster::new(params, 1);
        let offspring = Offspring::bernoulli(2, 0.45);
        let out = run_branching(&mut cluster, &offspring, 50, 100_000, 7);
        assert!(out.drained, "subcritical process must die out: {out:?}");
        assert!(out.processed >= 50);
        cluster.check_invariants().unwrap();
    }

    #[test]
    fn balancing_shortens_makespan() {
        // The headline: with a near-critical tree rooted on one processor,
        // the balancer spreads the frontier so all processors consume in
        // parallel, while without balancing only processor 0 works.
        let n = 8;
        let offspring = Offspring::bernoulli(2, 0.495); // mean 0.99
        let mut with = SimpleCluster::new(Params::new(n, 2, 1.3, 4).unwrap(), 3);
        let out_with = run_branching(&mut with, &offspring, 400, 1_000_000, 11);
        let mut without = dlb_baselines_stub::NoBalanceLocal::new(n);
        let out_without = run_branching(&mut without, &offspring, 400, 1_000_000, 11);
        assert!(out_with.drained && out_without.drained);
        assert!(
            out_with.makespan * 2 < out_without.makespan,
            "balanced {} vs unbalanced {} steps",
            out_with.makespan,
            out_without.makespan
        );
    }

    #[test]
    fn full_cluster_branching_keeps_invariants() {
        let params = Params::new(6, 1, 1.2, 4).unwrap();
        let mut cluster = Cluster::new(params, 5);
        let offspring = Offspring::bernoulli(3, 0.3);
        let out = run_branching(&mut cluster, &offspring, 30, 50_000, 9);
        assert!(out.drained);
        cluster.check_invariants().unwrap();
    }

    /// Local no-op balancer so this crate's tests don't depend on
    /// dlb-baselines (which depends on dlb-net).
    mod dlb_baselines_stub {
        use dlb_core::{LoadBalancer, LoadEvent, Metrics};

        pub struct NoBalanceLocal {
            loads: Vec<u64>,
            metrics: Metrics,
        }

        impl NoBalanceLocal {
            pub fn new(n: usize) -> Self {
                NoBalanceLocal {
                    loads: vec![0; n],
                    metrics: Metrics::new(),
                }
            }
        }

        impl LoadBalancer for NoBalanceLocal {
            fn n(&self) -> usize {
                self.loads.len()
            }
            fn loads(&self) -> Vec<u64> {
                self.loads.clone()
            }
            fn step(&mut self, events: &[LoadEvent]) {
                for (i, &ev) in events.iter().enumerate() {
                    match ev {
                        LoadEvent::Generate => {
                            self.loads[i] += 1;
                            self.metrics.generated += 1;
                        }
                        LoadEvent::Consume => {
                            if self.loads[i] > 0 {
                                self.loads[i] -= 1;
                                self.metrics.consumed += 1;
                            }
                        }
                        LoadEvent::Idle => {}
                    }
                }
            }
            fn metrics(&self) -> &Metrics {
                &self.metrics
            }
            fn name(&self) -> &'static str {
                "none"
            }
        }
    }
}
