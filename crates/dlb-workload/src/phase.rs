//! The §7 phase workload model.
//!
//! Each processor's behaviour is a sequence of phases
//! `(g_i, c_i, start_i, end_i)`: while `start_i ≤ t ≤ end_i` the processor
//! generates a packet with probability `g_i` and consumes one (if
//! available) with probability `c_i`.  Phase parameters are drawn from the
//! global configuration `(g_l, g_h, c_l, c_h, len_l, len_h)`; the paper's
//! §7 experiments use `g ∈ [0.1, 0.9]`, `c ∈ [0.1, 0.7]`,
//! `len ∈ [150, 400]` on 64 processors for 500 steps — the long phases
//! produce a "very inhomogeneous distribution of generation and
//! consumption activities".
//!
//! §2's timing model allows one action per step, so when the generation
//! and consumption draws both fire, a fair coin picks which one happens.

use crate::Workload;
use dlb_core::LoadEvent;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Global configuration of the phase model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseConfig {
    /// Lower/upper bound of the per-phase generation probability.
    pub g: (f64, f64),
    /// Lower/upper bound of the per-phase consumption probability.
    pub c: (f64, f64),
    /// Lower/upper bound of the phase length in steps.
    pub len: (usize, usize),
}

impl Default for PhaseConfig {
    /// Defaults to the paper's §7 configuration.
    fn default() -> Self {
        Self::paper_section7()
    }
}

impl PhaseConfig {
    /// The exact configuration of the paper's §7 experiments.
    pub fn paper_section7() -> Self {
        PhaseConfig {
            g: (0.1, 0.9),
            c: (0.1, 0.7),
            len: (150, 400),
        }
    }

    /// Validates the bounds (probabilities in `[0, 1]`, ordered ranges,
    /// positive lengths).
    pub fn validate(&self) -> Result<(), String> {
        let prob_ok = |(lo, hi): (f64, f64)| (0.0..=1.0).contains(&lo) && lo <= hi && hi <= 1.0;
        if !prob_ok(self.g) {
            return Err(format!("generation range {:?} invalid", self.g));
        }
        if !prob_ok(self.c) {
            return Err(format!("consumption range {:?} invalid", self.c));
        }
        if self.len.0 == 0 || self.len.0 > self.len.1 {
            return Err(format!("length range {:?} invalid", self.len));
        }
        Ok(())
    }
}

/// One phase of one processor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Generation probability while the phase is active.
    pub g: f64,
    /// Consumption probability while the phase is active.
    pub c: f64,
    /// First step of the phase (inclusive).
    pub start: usize,
    /// Last step of the phase (inclusive).
    pub end: usize,
}

/// The §7 phase workload: per-processor phase schedules drawn once at
/// construction, plus a per-step event sampler.
#[derive(Debug, Clone)]
pub struct PhaseWorkload {
    schedules: Vec<Vec<Phase>>,
    rng: ChaCha8Rng,
}

impl PhaseWorkload {
    /// Draws a phase schedule covering `horizon` steps for each of `n`
    /// processors.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`PhaseConfig::validate`].
    pub fn new(n: usize, horizon: usize, config: PhaseConfig, seed: u64) -> Self {
        config.validate().expect("valid phase configuration");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let schedules = (0..n)
            .map(|_| {
                let mut phases = Vec::new();
                let mut t = 0usize;
                while t < horizon {
                    let len = rng.gen_range(config.len.0..=config.len.1);
                    phases.push(Phase {
                        g: rng.gen_range(config.g.0..=config.g.1),
                        c: rng.gen_range(config.c.0..=config.c.1),
                        start: t,
                        end: t + len - 1,
                    });
                    t += len;
                }
                phases
            })
            .collect();
        PhaseWorkload { schedules, rng }
    }

    /// The paper's §7 workload: 64 processors, 500 steps.
    pub fn paper_section7(seed: u64) -> Self {
        Self::new(64, 500, PhaseConfig::paper_section7(), seed)
    }

    /// The phase schedule of processor `i`.
    pub fn schedule(&self, i: usize) -> &[Phase] {
        &self.schedules[i]
    }

    fn active_phase(&self, i: usize, t: usize) -> Option<&Phase> {
        self.schedules[i]
            .iter()
            .find(|p| p.start <= t && t <= p.end)
    }
}

impl Workload for PhaseWorkload {
    fn n(&self) -> usize {
        self.schedules.len()
    }

    fn events_at(&mut self, t: usize, out: &mut Vec<LoadEvent>) {
        out.clear();
        for i in 0..self.schedules.len() {
            let (g, c) = match self.active_phase(i, t) {
                Some(p) => (p.g, p.c),
                None => (0.0, 0.0),
            };
            let gen = self.rng.gen_bool(g);
            let con = self.rng.gen_bool(c);
            out.push(match (gen, con) {
                (true, false) => LoadEvent::Generate,
                (false, true) => LoadEvent::Consume,
                (true, true) => {
                    if self.rng.gen_bool(0.5) {
                        LoadEvent::Generate
                    } else {
                        LoadEvent::Consume
                    }
                }
                (false, false) => LoadEvent::Idle,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        PhaseConfig::paper_section7().validate().unwrap();
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = PhaseConfig::paper_section7();
        cfg.g = (0.9, 0.1);
        assert!(cfg.validate().is_err());
        let mut cfg = PhaseConfig::paper_section7();
        cfg.c = (0.1, 1.5);
        assert!(cfg.validate().is_err());
        let mut cfg = PhaseConfig::paper_section7();
        cfg.len = (0, 10);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn schedules_cover_the_horizon() {
        let wl = PhaseWorkload::new(8, 500, PhaseConfig::paper_section7(), 3);
        for i in 0..8 {
            let phases = wl.schedule(i);
            assert!(!phases.is_empty());
            assert_eq!(phases[0].start, 0);
            for w in phases.windows(2) {
                assert_eq!(w[1].start, w[0].end + 1, "phases are consecutive");
            }
            assert!(phases.last().unwrap().end >= 499);
            for p in phases {
                let len = p.end - p.start + 1;
                assert!((150..=400).contains(&len), "len {len}");
                assert!((0.1..=0.9).contains(&p.g));
                assert!((0.1..=0.7).contains(&p.c));
            }
        }
    }

    #[test]
    fn event_frequencies_match_probabilities() {
        // A single processor with one long phase: empirical generate rate
        // should approach g(1 − c) + g·c/2.
        let cfg = PhaseConfig {
            g: (0.8, 0.8),
            c: (0.4, 0.4),
            len: (10_000, 10_000),
        };
        let mut wl = PhaseWorkload::new(1, 10_000, cfg, 7);
        let mut gen = 0usize;
        let mut con = 0usize;
        let mut out = Vec::new();
        for t in 0..10_000 {
            wl.events_at(t, &mut out);
            match out[0] {
                LoadEvent::Generate => gen += 1,
                LoadEvent::Consume => con += 1,
                LoadEvent::Idle => {}
            }
        }
        let g_rate = gen as f64 / 10_000.0;
        let c_rate = con as f64 / 10_000.0;
        assert!(
            (g_rate - (0.8 * 0.6 + 0.8 * 0.4 * 0.5)).abs() < 0.03,
            "gen {g_rate}"
        );
        assert!(
            (c_rate - (0.4 * 0.2 + 0.8 * 0.4 * 0.5)).abs() < 0.03,
            "con {c_rate}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let collect = |seed| {
            let mut wl = PhaseWorkload::new(4, 100, PhaseConfig::paper_section7(), seed);
            let mut all = Vec::new();
            let mut out = Vec::new();
            for t in 0..100 {
                wl.events_at(t, &mut out);
                all.push(out.clone());
            }
            all
        };
        assert_eq!(collect(5), collect(5));
        assert_ne!(collect(5), collect(6));
    }

    #[test]
    fn paper_preset_shape() {
        let wl = PhaseWorkload::paper_section7(1);
        assert_eq!(wl.n(), 64);
    }
}
