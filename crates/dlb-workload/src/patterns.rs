//! Elementary load patterns: the §3 one-producer models, random mixes,
//! bursts, moving hotspots and adversarial producer/consumer splits.

use crate::Workload;
use dlb_core::LoadEvent;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// §3's one-processor-generator model: a single processor generates every
/// step, everyone else is idle.
#[derive(Debug, Clone)]
pub struct OneProducer {
    n: usize,
    producer: usize,
}

impl OneProducer {
    /// A producer at index `producer` in a network of `n`.
    pub fn new(n: usize, producer: usize) -> Self {
        assert!(producer < n, "producer index out of range");
        OneProducer { n, producer }
    }
}

impl Workload for OneProducer {
    fn n(&self) -> usize {
        self.n
    }

    fn events_at(&mut self, _t: usize, out: &mut Vec<LoadEvent>) {
        out.clear();
        out.resize(self.n, LoadEvent::Idle);
        out[self.producer] = LoadEvent::Generate;
    }
}

/// Independent per-processor coin flips: generate with probability
/// `p_gen`, consume with probability `p_con`, otherwise idle.
#[derive(Debug, Clone)]
pub struct UniformRandom {
    n: usize,
    p_gen: f64,
    p_con: f64,
    rng: ChaCha8Rng,
}

impl UniformRandom {
    /// `p_gen + p_con` must not exceed 1.
    pub fn new(n: usize, p_gen: f64, p_con: f64, seed: u64) -> Self {
        assert!(
            p_gen >= 0.0 && p_con >= 0.0 && p_gen + p_con <= 1.0,
            "invalid probabilities"
        );
        UniformRandom {
            n,
            p_gen,
            p_con,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }
}

impl Workload for UniformRandom {
    fn n(&self) -> usize {
        self.n
    }

    fn events_at(&mut self, _t: usize, out: &mut Vec<LoadEvent>) {
        out.clear();
        for _ in 0..self.n {
            let x: f64 = self.rng.gen();
            out.push(if x < self.p_gen {
                LoadEvent::Generate
            } else if x < self.p_gen + self.p_con {
                LoadEvent::Consume
            } else {
                LoadEvent::Idle
            });
        }
    }
}

/// Alternating global phases: `burst_len` steps where every processor
/// generates with probability `p_gen`, then `quiet_len` steps where every
/// processor consumes with probability `p_con`.
#[derive(Debug, Clone)]
pub struct Bursty {
    n: usize,
    burst_len: usize,
    quiet_len: usize,
    p_gen: f64,
    p_con: f64,
    rng: ChaCha8Rng,
}

impl Bursty {
    /// Alternating burst/quiet phases.
    pub fn new(
        n: usize,
        burst_len: usize,
        quiet_len: usize,
        p_gen: f64,
        p_con: f64,
        seed: u64,
    ) -> Self {
        assert!(
            burst_len > 0 && quiet_len > 0,
            "phase lengths must be positive"
        );
        Bursty {
            n,
            burst_len,
            quiet_len,
            p_gen,
            p_con,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    fn bursting(&self, t: usize) -> bool {
        t % (self.burst_len + self.quiet_len) < self.burst_len
    }
}

impl Workload for Bursty {
    fn n(&self) -> usize {
        self.n
    }

    fn events_at(&mut self, t: usize, out: &mut Vec<LoadEvent>) {
        out.clear();
        let bursting = self.bursting(t);
        for _ in 0..self.n {
            let x: f64 = self.rng.gen();
            out.push(if bursting && x < self.p_gen {
                LoadEvent::Generate
            } else if !bursting && x < self.p_con {
                LoadEvent::Consume
            } else {
                LoadEvent::Idle
            });
        }
    }
}

/// A moving hotspot: one processor generates every step while all others
/// consume with probability `p_con`; the hotspot advances to the next
/// processor every `period` steps.  Stresses the adaptivity claim of §1.
#[derive(Debug, Clone)]
pub struct MovingHotspot {
    n: usize,
    period: usize,
    p_con: f64,
    rng: ChaCha8Rng,
}

impl MovingHotspot {
    /// Hotspot advancing every `period > 0` steps.
    pub fn new(n: usize, period: usize, p_con: f64, seed: u64) -> Self {
        assert!(period > 0, "period must be positive");
        MovingHotspot {
            n,
            period,
            p_con,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Which processor is hot at step `t`.
    pub fn hotspot_at(&self, t: usize) -> usize {
        (t / self.period) % self.n
    }
}

impl Workload for MovingHotspot {
    fn n(&self) -> usize {
        self.n
    }

    fn events_at(&mut self, t: usize, out: &mut Vec<LoadEvent>) {
        out.clear();
        let hot = self.hotspot_at(t);
        for i in 0..self.n {
            out.push(if i == hot {
                LoadEvent::Generate
            } else if self.rng.gen_bool(self.p_con) {
                LoadEvent::Consume
            } else {
                LoadEvent::Idle
            });
        }
    }
}

/// Adversarial producer/consumer split: the first half generates, the
/// second half consumes, with roles swapping every `swap_every` steps
/// (maximally inhomogeneous, and the load pattern the borrow machinery of
/// §4 exists for).
#[derive(Debug, Clone)]
pub struct ProducerConsumerSplit {
    n: usize,
    swap_every: usize,
}

impl ProducerConsumerSplit {
    /// Roles swap every `swap_every > 0` steps.
    pub fn new(n: usize, swap_every: usize) -> Self {
        assert!(swap_every > 0, "swap period must be positive");
        ProducerConsumerSplit { n, swap_every }
    }
}

impl Workload for ProducerConsumerSplit {
    fn n(&self) -> usize {
        self.n
    }

    fn events_at(&mut self, t: usize, out: &mut Vec<LoadEvent>) {
        out.clear();
        let swapped = (t / self.swap_every) % 2 == 1;
        for i in 0..self.n {
            let first_half = i < self.n / 2;
            out.push(if first_half != swapped {
                LoadEvent::Generate
            } else {
                LoadEvent::Consume
            });
        }
    }
}

/// No activity at all (for cost baselines: a correct balancer must not
/// perform any operations on a silent network).
#[derive(Debug, Clone)]
pub struct Silent {
    n: usize,
}

impl Silent {
    /// A silent workload for `n` processors.
    pub fn new(n: usize) -> Self {
        Silent { n }
    }
}

impl Workload for Silent {
    fn n(&self) -> usize {
        self.n
    }

    fn events_at(&mut self, _t: usize, out: &mut Vec<LoadEvent>) {
        out.clear();
        out.resize(self.n, LoadEvent::Idle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(w: &mut impl Workload, steps: usize) -> Vec<Vec<LoadEvent>> {
        let mut all = Vec::new();
        let mut out = Vec::new();
        for t in 0..steps {
            w.events_at(t, &mut out);
            assert_eq!(out.len(), w.n());
            all.push(out.clone());
        }
        all
    }

    #[test]
    fn one_producer_only_produces_at_index() {
        let mut w = OneProducer::new(5, 2);
        for row in collect(&mut w, 10) {
            for (i, &e) in row.iter().enumerate() {
                if i == 2 {
                    assert_eq!(e, LoadEvent::Generate);
                } else {
                    assert_eq!(e, LoadEvent::Idle);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn one_producer_validates_index() {
        OneProducer::new(3, 3);
    }

    #[test]
    fn uniform_random_rates() {
        let mut w = UniformRandom::new(1, 0.3, 0.5, 11);
        let rows = collect(&mut w, 20_000);
        let gens = rows.iter().filter(|r| r[0] == LoadEvent::Generate).count();
        let cons = rows.iter().filter(|r| r[0] == LoadEvent::Consume).count();
        assert!((gens as f64 / 20_000.0 - 0.3).abs() < 0.02);
        assert!((cons as f64 / 20_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "invalid probabilities")]
    fn uniform_random_validates_probabilities() {
        UniformRandom::new(4, 0.7, 0.7, 0);
    }

    #[test]
    fn bursty_alternates() {
        let mut w = Bursty::new(2, 5, 5, 1.0, 1.0, 1);
        let rows = collect(&mut w, 20);
        assert!(rows[0].iter().all(|&e| e == LoadEvent::Generate));
        assert!(rows[5].iter().all(|&e| e == LoadEvent::Consume));
        assert!(rows[10].iter().all(|&e| e == LoadEvent::Generate));
    }

    #[test]
    fn hotspot_moves() {
        let w = MovingHotspot::new(4, 10, 0.0, 2);
        assert_eq!(w.hotspot_at(0), 0);
        assert_eq!(w.hotspot_at(9), 0);
        assert_eq!(w.hotspot_at(10), 1);
        assert_eq!(w.hotspot_at(39), 3);
        assert_eq!(w.hotspot_at(40), 0, "wraps around");
    }

    #[test]
    fn split_swaps_roles() {
        let mut w = ProducerConsumerSplit::new(4, 3);
        let rows = collect(&mut w, 6);
        assert_eq!(
            rows[0],
            vec![
                LoadEvent::Generate,
                LoadEvent::Generate,
                LoadEvent::Consume,
                LoadEvent::Consume
            ]
        );
        assert_eq!(
            rows[3],
            vec![
                LoadEvent::Consume,
                LoadEvent::Consume,
                LoadEvent::Generate,
                LoadEvent::Generate
            ]
        );
    }

    #[test]
    fn silent_is_all_idle() {
        let mut w = Silent::new(3);
        for row in collect(&mut w, 5) {
            assert!(row.iter().all(|&e| e == LoadEvent::Idle));
        }
    }
}
