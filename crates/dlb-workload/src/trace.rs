//! Record/replay of event traces.
//!
//! Any [`Workload`] can be recorded into an [`EventTrace`]; a trace
//! replays bit-identically (and serialises to JSON), which makes
//! experiments repeatable across strategies: drive the full algorithm and
//! every baseline with the *same* trace, so differences are attributable
//! to the balancer alone.

use crate::Workload;
use dlb_core::LoadEvent;
use dlb_json::{Json, ToJson};

/// A fully materialised event schedule: `events[t][i]` is processor `i`'s
/// action at step `t`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventTrace {
    events: Vec<Vec<LoadEvent>>,
    n: usize,
}

impl EventTrace {
    /// Records `steps` steps of a workload.
    pub fn record<W: Workload>(workload: &mut W, steps: usize) -> Self {
        let n = workload.n();
        let mut events = Vec::with_capacity(steps);
        let mut out = Vec::new();
        for t in 0..steps {
            workload.events_at(t, &mut out);
            events.push(out.clone());
        }
        EventTrace { events, n }
    }

    /// Number of recorded steps.
    pub fn steps(&self) -> usize {
        self.events.len()
    }

    /// The events of step `t`.
    pub fn row(&self, t: usize) -> &[LoadEvent] {
        &self.events[t]
    }

    /// Serialises to JSON.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("n".into(), self.n.to_json()),
            ("events".into(), self.events.to_json()),
        ])
        .render()
    }

    /// Deserialises from JSON.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = Json::parse(text)?;
        let n: usize = dlb_json::req(&value, "n")?;
        let events: Vec<Vec<LoadEvent>> = dlb_json::req(&value, "events")?;
        for (t, row) in events.iter().enumerate() {
            if row.len() != n {
                return Err(format!("step {t} has {} events, expected {n}", row.len()));
            }
        }
        Ok(EventTrace { events, n })
    }

    /// A replaying [`Workload`] over this trace (idles past the end).
    pub fn replay(&self) -> TraceReplay<'_> {
        TraceReplay { trace: self }
    }
}

/// Replays a recorded trace as a [`Workload`].
#[derive(Debug, Clone)]
pub struct TraceReplay<'a> {
    trace: &'a EventTrace,
}

impl Workload for TraceReplay<'_> {
    fn n(&self) -> usize {
        self.trace.n
    }

    fn events_at(&mut self, t: usize, out: &mut Vec<LoadEvent>) {
        out.clear();
        if t < self.trace.events.len() {
            out.extend_from_slice(&self.trace.events[t]);
        } else {
            out.resize(self.trace.n, LoadEvent::Idle);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::UniformRandom;

    #[test]
    fn record_and_replay_are_identical() {
        let mut original = UniformRandom::new(6, 0.4, 0.3, 21);
        let trace = EventTrace::record(&mut original, 50);
        assert_eq!(trace.steps(), 50);

        let mut fresh = UniformRandom::new(6, 0.4, 0.3, 21);
        let mut replay = trace.replay();
        let mut a = Vec::new();
        let mut b = Vec::new();
        for t in 0..50 {
            fresh.events_at(t, &mut a);
            replay.events_at(t, &mut b);
            assert_eq!(a, b, "step {t}");
        }
    }

    #[test]
    fn replay_idles_past_end() {
        let mut w = UniformRandom::new(2, 0.9, 0.0, 1);
        let trace = EventTrace::record(&mut w, 3);
        let mut replay = trace.replay();
        let mut out = Vec::new();
        replay.events_at(10, &mut out);
        assert_eq!(out, vec![LoadEvent::Idle, LoadEvent::Idle]);
    }

    #[test]
    fn json_roundtrip() {
        let mut w = UniformRandom::new(3, 0.5, 0.2, 4);
        let trace = EventTrace::record(&mut w, 10);
        let json = trace.to_json();
        let back = EventTrace::from_json(&json).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(EventTrace::from_json("{not json").is_err());
    }
}
