//! Open-loop request generation for the `dlb-serve` front-end.
//!
//! Unlike the per-processor [`crate::Workload`] event streams, a service
//! is driven by *requests*: each has an arrival tick decided by a rate
//! curve (not by how fast the service drains — that is what makes the
//! generator open-loop and immune to coordinated omission), a key drawn
//! from a Zipf distribution (hot-key skew), and a service demand in
//! ticks.  The whole stream is a pure function of the seed and the
//! config, so the simulated-clock and wall-clock engines replay the
//! exact same requests.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// One segment of the arrival-rate curve (a "diurnal phase").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatePhase {
    /// How many ticks this phase lasts.
    pub ticks: u64,
    /// Mean request arrivals per tick while the phase is active.
    pub rate: f64,
}

/// Configuration of the request stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceLoad {
    /// Arrival-rate curve, cycled for the whole run (diurnal pattern).
    pub phases: Vec<RatePhase>,
    /// Number of distinct keys.
    pub keys: u64,
    /// Zipf skew exponent (`0.0` = uniform keys).
    pub zipf_s: f64,
    /// Per-request service demand, uniform in `[min, max]` ticks.
    pub service_ticks: (u64, u64),
}

/// One generated request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Dense id in arrival order (0, 1, 2, …).
    pub id: u64,
    /// Routing key (hot keys are small under Zipf skew).
    pub key: u64,
    /// Scheduled arrival tick — latency is measured from here.
    pub arrival: u64,
    /// Service demand in ticks.
    pub service: u64,
}

/// Deterministic open-loop request source.
///
/// `arrivals_at(t)` must be called with strictly increasing `t`; the
/// per-tick arrival count is a fractional accumulator over the active
/// phase's rate (so a rate of 0.25 emits one request every 4 ticks,
/// exactly), and key/service draws consume a seeded ChaCha8 stream.
pub struct RequestSource {
    config: ServiceLoad,
    /// Zipf CDF over `keys` entries (empty when `zipf_s == 0`).
    cdf: Vec<f64>,
    rng: ChaCha8Rng,
    /// Fractional arrivals carried to the next tick.
    acc: f64,
    next_id: u64,
    /// Cycle length (sum of phase ticks).
    cycle: u64,
}

impl RequestSource {
    /// Creates the source.
    ///
    /// # Panics
    ///
    /// Panics on an empty or zero-length phase list, zero keys, or an
    /// inverted service range — configs are validated by the scenario
    /// loader, so a bad value here is a programming error.
    pub fn new(config: ServiceLoad, seed: u64) -> Self {
        let cycle: u64 = config.phases.iter().map(|p| p.ticks).sum();
        assert!(cycle > 0, "phase list must cover at least one tick");
        assert!(config.keys > 0, "need at least one key");
        assert!(
            config.service_ticks.0 <= config.service_ticks.1,
            "service range inverted"
        );
        let cdf = if config.zipf_s == 0.0 {
            Vec::new()
        } else {
            // Zipf weights k^-s, prefix-summed and normalised once;
            // sampling is then a binary search per request.
            let mut cdf = Vec::with_capacity(config.keys as usize);
            let mut total = 0.0;
            for k in 1..=config.keys {
                total += (k as f64).powf(-config.zipf_s);
                cdf.push(total);
            }
            for w in cdf.iter_mut() {
                *w /= total;
            }
            cdf
        };
        RequestSource {
            cdf,
            rng: ChaCha8Rng::seed_from_u64(seed),
            acc: 0.0,
            next_id: 0,
            cycle,
            config,
        }
    }

    /// The arrival rate active at tick `t` (phases cycle).
    pub fn rate_at(&self, t: u64) -> f64 {
        let mut into = t % self.cycle;
        for phase in &self.config.phases {
            if into < phase.ticks {
                return phase.rate;
            }
            into -= phase.ticks;
        }
        unreachable!("cycle covers every offset")
    }

    /// Appends the requests arriving at tick `t` to `out`.  Must be
    /// called with strictly increasing `t` starting at 0.
    pub fn arrivals_at(&mut self, t: u64, out: &mut Vec<Request>) {
        self.acc += self.rate_at(t);
        let count = self.acc as u64;
        self.acc -= count as f64;
        let (lo, hi) = self.config.service_ticks;
        for _ in 0..count {
            let key = if self.cdf.is_empty() {
                self.rng.gen_range(0..self.config.keys)
            } else {
                let x: f64 = self.rng.gen();
                self.cdf.partition_point(|&c| c < x) as u64
            };
            out.push(Request {
                id: self.next_id,
                key,
                arrival: t,
                service: self.rng.gen_range(lo..=hi),
            });
            self.next_id += 1;
        }
    }

    /// Requests generated so far.
    pub fn issued(&self) -> u64 {
        self.next_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ServiceLoad {
        ServiceLoad {
            phases: vec![
                RatePhase {
                    ticks: 10,
                    rate: 2.0,
                },
                RatePhase {
                    ticks: 10,
                    rate: 0.25,
                },
            ],
            keys: 100,
            zipf_s: 1.1,
            service_ticks: (1, 5),
        }
    }

    #[test]
    fn arrival_counts_follow_the_rate_curve_exactly() {
        let mut src = RequestSource::new(config(), 7);
        let mut out = Vec::new();
        for t in 0..40 {
            src.arrivals_at(t, &mut out);
        }
        // One full cycle = 10·2.0 + 10·0.25 = 22.5 requests; two cycles
        // accumulate to exactly 45 (the fractional carry never drifts).
        assert_eq!(out.len(), 45);
        assert_eq!(src.issued(), 45);
        // Ids are dense and arrivals non-decreasing.
        for (i, r) in out.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
        assert!(out.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut src = RequestSource::new(config(), seed);
            let mut out = Vec::new();
            for t in 0..100 {
                src.arrivals_at(t, &mut out);
            }
            out
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn zipf_skews_toward_small_keys() {
        let mut cfg = config();
        cfg.zipf_s = 1.2;
        cfg.phases = vec![RatePhase {
            ticks: 1,
            rate: 10.0,
        }];
        let mut src = RequestSource::new(cfg, 11);
        let mut out = Vec::new();
        for t in 0..2000 {
            src.arrivals_at(t, &mut out);
        }
        let hot = out.iter().filter(|r| r.key < 10).count();
        // Under Zipf(1.2) over 100 keys the top 10 carry well over half
        // the mass; uniform would put them at ~10%.
        assert!(
            hot * 2 > out.len(),
            "only {hot}/{} requests hit the hot keys",
            out.len()
        );
        assert!(out.iter().all(|r| r.key < 100));
        assert!(out.iter().all(|r| (1..=5).contains(&r.service)));
    }

    #[test]
    fn uniform_keys_when_skew_is_zero() {
        let mut cfg = config();
        cfg.zipf_s = 0.0;
        cfg.phases = vec![RatePhase {
            ticks: 1,
            rate: 10.0,
        }];
        let mut src = RequestSource::new(cfg, 5);
        let mut out = Vec::new();
        for t in 0..1000 {
            src.arrivals_at(t, &mut out);
        }
        let hot = out.iter().filter(|r| r.key < 10).count();
        let frac = hot as f64 / out.len() as f64;
        assert!((0.05..0.2).contains(&frac), "uniform hot fraction {frac}");
    }
}
