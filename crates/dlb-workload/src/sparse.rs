//! Event-driven sparse workloads: only the processors that *do*
//! something at step `t` are visited.
//!
//! The dense [`Workload`] contract materialises an `n`-vector of
//! [`LoadEvent`]s every step even when almost every entry is
//! [`LoadEvent::Idle`].  At `n = 2²⁰` with 1 % activity that is a
//! million writes per step to say "nothing happened".  A
//! [`SparseWorkload`] instead yields just the active `(processor,
//! event)` pairs, and every pattern here schedules each processor's
//! *next* activation on a [`dlb_net::CalendarQueue`], so a step costs
//! O(active), not O(n).
//!
//! Two properties make the sparse path exchangeable with the dense one:
//!
//! 1. **Identical streams.**  [`SparseActivity`] implements both traits
//!    from one internal generator: `events_at` densifies exactly what
//!    `active_at` returns, so a dense and a sparse run over same-seed
//!    instances see the same events by construction.
//! 2. **Counter-based randomness.**  Every random decision is a
//!    [`splitmix64`]-style hash of `(seed, processor, t, salt)` — there
//!    is no sequential RNG stream, so skipping an idle processor
//!    consumes no randomness and cannot shift later draws.
//!
//! Combined with [`dlb_core::LoadBalancer::step_sparse`] (whose engine
//! implementations skip exactly the `Idle` arms of the dense loop) this
//! gives bit-identical results to the dense path at a cost proportional
//! to the active fraction.

use crate::Workload;
use dlb_core::{LoadBalancer, LoadEvent};
use dlb_net::CalendarQueue;

/// A workload that can enumerate just its non-idle processors.
///
/// `active_at` must list events sorted by ascending processor id, with
/// at most one event per processor, and must be called with strictly
/// increasing `t` starting at 0 (same contract as
/// [`Workload::events_at`]).  A processor absent from the list is
/// `Idle` at `t`.
pub trait SparseWorkload: Workload {
    /// Fills `out` with the `(processor, event)` pairs active at step
    /// `t`, sorted by ascending processor id.
    fn active_at(&mut self, t: usize, out: &mut Vec<(usize, LoadEvent)>);
}

/// Boxed sparse workloads forward, mirroring the blanket [`Workload`]
/// impl for boxes.
impl<W: SparseWorkload + ?Sized> SparseWorkload for Box<W> {
    fn active_at(&mut self, t: usize, out: &mut Vec<(usize, LoadEvent)>) {
        (**self).active_at(t, out);
    }
}

/// Drives a balancer with a sparse workload for `steps` global time
/// steps via [`LoadBalancer::step_sparse`], invoking
/// `observe(t, active, balancer)` after each step with the events just
/// applied.
///
/// The observer takes the balancer by `&mut` (unlike [`crate::drive`])
/// so it can use the incremental [`LoadBalancer::load_summary`] — an
/// O(n) observer would put back the very scan the sparse path removed.
pub fn drive_sparse<B: LoadBalancer + ?Sized, W: SparseWorkload + ?Sized>(
    balancer: &mut B,
    workload: &mut W,
    steps: usize,
    mut observe: impl FnMut(usize, &[(usize, LoadEvent)], &mut B),
) {
    assert_eq!(
        balancer.n(),
        workload.n(),
        "balancer/workload size mismatch"
    );
    let mut active = Vec::new();
    for t in 0..steps {
        workload.active_at(t, &mut active);
        balancer.step_sparse(&active);
        observe(t, &active, balancer);
    }
}

/// Mixes `(seed, processor, t, salt)` into a uniform 64-bit value with
/// the splitmix64 finaliser.  This is the only source of randomness in
/// the sparse patterns: a pure function of its inputs, so event streams
/// are independent of which processors were visited before.
fn mix(seed: u64, proc: u64, t: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_add(proc.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(t.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(salt.wrapping_mul(0x94D0_49BB_1331_11EB));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const SALT_INIT: u64 = 0xA1;
const SALT_GAP: u64 = 0xB2;
const SALT_ARRIVAL: u64 = 0xC3;
const SALT_SERVICE: u64 = 0xD4;

/// Which structurally sparse pattern a [`SparseActivity`] runs.
///
/// All gaps are in steps and must be ≥ 1; see each variant for the
/// resulting activity fraction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SparsePattern {
    /// Sparse phase model: a processor wakes, runs a work phase of
    /// `work` consecutive active steps (generating for the first half,
    /// consuming for the rest), then sleeps for a gap drawn uniformly
    /// from `gap.0..=gap.1`.  Activity fraction ≈
    /// `work / (work + mean gap)`.
    Phase { work: u32, gap: (u32, u32) },
    /// Hot-spot: processor `(t / period) % n` generates every step (the
    /// spot moves every `period` steps); every processor additionally
    /// consumes at random gaps of mean ≈ `consumer_gap`, draining what
    /// the spot injects.
    Hotspot { period: u32, consumer_gap: u32 },
    /// Bursty: time is cut into cycles of `burst` hot steps followed by
    /// `quiet` cold ones.  A processor active inside the burst window
    /// generates and stays active every step until the window closes;
    /// outside it consumes and sleeps for a gap drawn from
    /// `1..=quiet_gap`.
    Bursty {
        burst: u32,
        quiet: u32,
        quiet_gap: u32,
    },
    /// Service arrivals: each processor alternates a job arrival
    /// (generate, then a service time drawn from `1..=service_gap`)
    /// with a completion (consume, then an inter-arrival gap drawn from
    /// `1..=arrival_gap`).
    Arrivals { arrival_gap: u32, service_gap: u32 },
}

impl SparsePattern {
    /// Validates the pattern parameters (all gaps ≥ 1, ordered ranges,
    /// positive lengths).
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            SparsePattern::Phase { work, gap } => {
                if work == 0 {
                    return Err("phase work length must be ≥ 1".into());
                }
                if gap.0 == 0 || gap.0 > gap.1 {
                    return Err(format!("phase gap range {gap:?} invalid"));
                }
            }
            SparsePattern::Hotspot {
                period,
                consumer_gap,
            } => {
                if period == 0 {
                    return Err("hotspot period must be ≥ 1".into());
                }
                if consumer_gap == 0 {
                    return Err("hotspot consumer gap must be ≥ 1".into());
                }
            }
            SparsePattern::Bursty {
                burst,
                quiet,
                quiet_gap,
            } => {
                if burst == 0 || quiet == 0 {
                    return Err("bursty burst/quiet lengths must be ≥ 1".into());
                }
                if quiet_gap == 0 {
                    return Err("bursty quiet gap must be ≥ 1".into());
                }
            }
            SparsePattern::Arrivals {
                arrival_gap,
                service_gap,
            } => {
                if arrival_gap == 0 || service_gap == 0 {
                    return Err("arrival/service gaps must be ≥ 1".into());
                }
            }
        }
        Ok(())
    }
}

/// An event-driven workload engine over one [`SparsePattern`].
///
/// Each processor has exactly one pending activation on an internal
/// [`CalendarQueue`]; a step pops the due processors, computes their
/// events (pure counter-RNG, no sequential state), reschedules them and
/// returns the sorted active list.  Stepping is O(active), independent
/// of `n`.
pub struct SparseActivity {
    n: usize,
    seed: u64,
    pattern: SparsePattern,
    queue: CalendarQueue<u32>,
    /// Per-processor pattern state: remaining phase steps (`Phase`) or
    /// arrival/service parity (`Arrivals`); unused by the other kinds.
    state: Vec<u32>,
    /// Next step the driver must ask for (strictly-increasing contract).
    next_t: u64,
    /// Reused by `events_at` to densify the active list.
    scratch: Vec<(usize, LoadEvent)>,
}

impl SparseActivity {
    /// A sparse workload over `n` processors.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0` or the pattern fails
    /// [`SparsePattern::validate`].
    pub fn new(n: usize, pattern: SparsePattern, seed: u64) -> Self {
        assert!(n > 0, "need at least one processor");
        if let Err(e) = pattern.validate() {
            panic!("invalid sparse pattern: {e}");
        }
        let mut queue = CalendarQueue::with_capacity(1024);
        // Stagger initial activations across one typical gap so the
        // steady-state activity fraction holds from step 0 instead of
        // every processor firing at once.
        let spread = match pattern {
            SparsePattern::Phase { gap, .. } => u64::from(gap.1) + 1,
            SparsePattern::Hotspot { consumer_gap, .. } => 2 * u64::from(consumer_gap),
            SparsePattern::Bursty { burst, quiet, .. } => u64::from(burst) + u64::from(quiet),
            SparsePattern::Arrivals { arrival_gap, .. } => u64::from(arrival_gap) + 1,
        };
        for i in 0..n {
            let t0 = mix(seed, i as u64, 0, SALT_INIT) % spread;
            queue.push(t0, i as u32);
        }
        SparseActivity {
            n,
            seed,
            pattern,
            queue,
            state: vec![0; n],
            next_t: 0,
            scratch: Vec::new(),
        }
    }

    /// The pattern this engine runs.
    pub fn pattern(&self) -> SparsePattern {
        self.pattern
    }

    /// Pops every processor due at `t`, computes its event, reschedules
    /// it and leaves `out` sorted by ascending processor id.
    fn collect_active(&mut self, t: usize, out: &mut Vec<(usize, LoadEvent)>) {
        let t = t as u64;
        assert!(
            t >= self.next_t,
            "sparse workload must be driven with strictly increasing t"
        );
        self.next_t = t + 1;
        out.clear();
        while let Some((_, proc)) = self.queue.pop_due(t) {
            let i = proc as usize;
            let (event, gap) = self.fire(i, t);
            out.push((i, event));
            self.queue.push(t + gap, proc);
        }
        // The queue pops ties in push order, not processor order.
        out.sort_unstable_by_key(|&(i, _)| i);
        if let SparsePattern::Hotspot { period, .. } = self.pattern {
            // The hot spot is a function of time, not of the queue: it
            // generates every step on top of its consumer schedule.
            let h = (t / u64::from(period)) as usize % self.n;
            match out.binary_search_by_key(&h, |&(i, _)| i) {
                Ok(pos) => out[pos].1 = LoadEvent::Generate,
                Err(pos) => out.insert(pos, (h, LoadEvent::Generate)),
            }
        }
    }

    /// One activation of processor `i` at step `t`: its event and the
    /// gap until its next activation.
    fn fire(&mut self, i: usize, t: u64) -> (LoadEvent, u64) {
        let p = i as u64;
        match self.pattern {
            SparsePattern::Phase { work, gap } => {
                if self.state[i] == 0 {
                    self.state[i] = work;
                }
                // Position inside the phase: generate the first half,
                // consume the tail, so a phase is load-neutral.
                let pos = work - self.state[i];
                let event = if pos < work.div_ceil(2) {
                    LoadEvent::Generate
                } else {
                    LoadEvent::Consume
                };
                self.state[i] -= 1;
                let next = if self.state[i] == 0 {
                    let span = u64::from(gap.1 - gap.0) + 1;
                    u64::from(gap.0) + mix(self.seed, p, t, SALT_GAP) % span
                } else {
                    1
                };
                (event, next)
            }
            SparsePattern::Hotspot { consumer_gap, .. } => {
                let gap = 1 + mix(self.seed, p, t, SALT_GAP) % (2 * u64::from(consumer_gap));
                (LoadEvent::Consume, gap)
            }
            SparsePattern::Bursty {
                burst,
                quiet,
                quiet_gap,
            } => {
                let cycle = u64::from(burst) + u64::from(quiet);
                if t % cycle < u64::from(burst) {
                    (LoadEvent::Generate, 1)
                } else {
                    let gap = 1 + mix(self.seed, p, t, SALT_GAP) % u64::from(quiet_gap);
                    (LoadEvent::Consume, gap)
                }
            }
            SparsePattern::Arrivals {
                arrival_gap,
                service_gap,
            } => {
                if self.state[i] == 0 {
                    // Arrival: a job lands, service completes later.
                    self.state[i] = 1;
                    let gap = 1 + mix(self.seed, p, t, SALT_SERVICE) % u64::from(service_gap);
                    (LoadEvent::Generate, gap)
                } else {
                    // Completion: consume, next arrival later.
                    self.state[i] = 0;
                    let gap = 1 + mix(self.seed, p, t, SALT_ARRIVAL) % u64::from(arrival_gap);
                    (LoadEvent::Consume, gap)
                }
            }
        }
    }
}

impl Workload for SparseActivity {
    fn n(&self) -> usize {
        self.n
    }

    /// Densifies the exact sparse stream — a dense driver sees the same
    /// events as a sparse one by construction.
    fn events_at(&mut self, t: usize, out: &mut Vec<LoadEvent>) {
        let mut active = std::mem::take(&mut self.scratch);
        self.collect_active(t, &mut active);
        out.clear();
        out.resize(self.n, LoadEvent::Idle);
        for &(i, ev) in &active {
            out[i] = ev;
        }
        self.scratch = active;
    }
}

impl SparseWorkload for SparseActivity {
    fn active_at(&mut self, t: usize, out: &mut Vec<(usize, LoadEvent)>) {
        self.collect_active(t, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlb_core::{Params, SimpleCluster};

    fn all_patterns() -> Vec<(&'static str, SparsePattern)> {
        vec![
            (
                "phase",
                SparsePattern::Phase {
                    work: 4,
                    gap: (3, 9),
                },
            ),
            (
                "hotspot",
                SparsePattern::Hotspot {
                    period: 5,
                    consumer_gap: 7,
                },
            ),
            (
                "bursty",
                SparsePattern::Bursty {
                    burst: 3,
                    quiet: 17,
                    quiet_gap: 11,
                },
            ),
            (
                "arrivals",
                SparsePattern::Arrivals {
                    arrival_gap: 9,
                    service_gap: 4,
                },
            ),
        ]
    }

    #[test]
    fn sparse_and_dense_streams_are_identical() {
        for (name, pattern) in all_patterns() {
            let n = 64;
            let mut dense = SparseActivity::new(n, pattern, 42);
            let mut sparse = SparseActivity::new(n, pattern, 42);
            let mut events = Vec::new();
            let mut active = Vec::new();
            for t in 0..300 {
                dense.events_at(t, &mut events);
                sparse.active_at(t, &mut active);
                // Sorted, unique processor ids.
                for w in active.windows(2) {
                    assert!(w[0].0 < w[1].0, "{name}: unsorted or duplicate at t={t}");
                }
                let mut densified = vec![LoadEvent::Idle; n];
                for &(i, ev) in &active {
                    assert!(!matches!(ev, LoadEvent::Idle), "{name}: idle listed");
                    densified[i] = ev;
                }
                assert_eq!(events, densified, "{name}: streams diverge at t={t}");
            }
        }
    }

    #[test]
    fn drive_sparse_matches_drive_bit_for_bit() {
        for (name, pattern) in all_patterns() {
            let n = 32;
            let params = Params::paper_section7(n);
            let mut a = SimpleCluster::new(params, 7);
            let mut b = SimpleCluster::new(params, 7);
            let mut dense = SparseActivity::new(n, pattern, 99);
            let mut sparse = SparseActivity::new(n, pattern, 99);
            crate::drive(&mut a, &mut dense, 400, |_, _| {});
            drive_sparse(&mut b, &mut sparse, 400, |_, _, _| {});
            assert_eq!(a.loads(), b.loads(), "{name}: loads diverge");
            assert_eq!(a.metrics(), b.metrics(), "{name}: metrics diverge");
        }
    }

    #[test]
    fn activity_fraction_tracks_the_gap() {
        let n = 4096;
        let frac = |gap: (u32, u32)| {
            let mut w = SparseActivity::new(n, SparsePattern::Phase { work: 1, gap }, 5);
            let mut active = Vec::new();
            let steps = 400;
            let mut total = 0usize;
            for t in 0..steps {
                w.active_at(t, &mut active);
                total += active.len();
            }
            total as f64 / (steps * n) as f64
        };
        let one_percent = frac((50, 150));
        let tenth_percent = frac((500, 1500));
        assert!(
            (0.005..0.02).contains(&one_percent),
            "1% target off: {one_percent}"
        );
        assert!(
            (0.0005..0.002).contains(&tenth_percent),
            "0.1% target off: {tenth_percent}"
        );
    }

    #[test]
    fn hotspot_generates_every_step() {
        let n = 16;
        let period = 5u32;
        let mut w = SparseActivity::new(
            n,
            SparsePattern::Hotspot {
                period,
                consumer_gap: 6,
            },
            3,
        );
        let mut active = Vec::new();
        for t in 0..120 {
            w.active_at(t, &mut active);
            let h = (t / period as usize) % n;
            let hit = active
                .iter()
                .find(|&&(i, _)| i == h)
                .expect("hot spot missing");
            assert_eq!(
                hit.1,
                LoadEvent::Generate,
                "hot spot not generating at t={t}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rewinding_time_panics() {
        let mut w = SparseActivity::new(
            8,
            SparsePattern::Arrivals {
                arrival_gap: 3,
                service_gap: 2,
            },
            1,
        );
        let mut active = Vec::new();
        w.active_at(5, &mut active);
        w.active_at(5, &mut active);
    }

    #[test]
    #[should_panic(expected = "invalid sparse pattern")]
    fn zero_gap_rejected() {
        SparseActivity::new(
            8,
            SparsePattern::Phase {
                work: 1,
                gap: (0, 4),
            },
            1,
        );
    }
}
