//! Umbrella crate for the SPAA'93 dynamic distributed load balancing
//! reproduction (Lüling & Monien, *A Dynamic Distributed Load Balancing
//! Algorithm with Provable Good Performance*).
//!
//! Re-exports the workspace crates under stable module names:
//!
//! * [`core`] — the algorithm itself (full virtual-load-class variant,
//!   practical variant, one-processor models).
//! * [`theory`] — operators, fixed points, theorem and cost bounds,
//!   variation-density engines.
//! * [`net`] — topologies, synchronous and asynchronous network
//!   simulators, threaded runtime.
//! * [`faults`] — seeded deterministic fault plans and injection
//!   (message loss, duplication, jitter, crashes, partitions).
//! * [`json`] — the dependency-free JSON layer the tools serialise with.
//! * [`workload`] — load-pattern generators including the paper's §7 model.
//! * [`baselines`] — comparison balancers.
//! * [`bnb`] — parallel best-first branch & bound on the balancing
//!   runtime (the paper's motivating application).
//!
//! See the `examples/` directory for runnable entry points and
//! `EXPERIMENTS.md` for the paper-versus-measured record.
//!
//! ```
//! use dlb::core::{imbalance_stats, Cluster, LoadBalancer, Params};
//! use dlb::workload::{drive, phase::PhaseWorkload};
//!
//! let params = Params::paper_section7(16);
//! let mut cluster = Cluster::new(params, 1);
//! let mut workload = PhaseWorkload::new(16, 200, Default::default(), 2);
//! drive(&mut cluster, &mut workload, 200, |_, _| {});
//! let stats = imbalance_stats(&cluster.loads());
//! assert!(stats.max_over_mean < 2.0);
//! ```

pub use dlb_baselines as baselines;
pub use dlb_bnb as bnb;
pub use dlb_core as core;
pub use dlb_faults as faults;
pub use dlb_json as json;
pub use dlb_net as net;
pub use dlb_theory as theory;
pub use dlb_workload as workload;
