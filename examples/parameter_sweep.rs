//! The paper's central tradeoff, measured: balancing quality versus cost
//! across the algorithm parameters `f` (trigger factor), `δ`
//! (neighbourhood size) and `C` (borrow limit).
//!
//!     cargo run --release --example parameter_sweep

use dlb::core::{imbalance_stats, Cluster, LoadBalancer, Params};
use dlb::workload::drive;
use dlb::workload::phase::{PhaseConfig, PhaseWorkload};

struct Outcome {
    ratio: f64,
    ops: u64,
    migrated: u64,
    remote_borrow: u64,
}

fn run(params: Params, runs: u64) -> Outcome {
    let mut ratio = 0.0;
    let mut samples = 0usize;
    let mut ops = 0;
    let mut migrated = 0;
    let mut remote = 0;
    for r in 0..runs {
        let mut cluster = Cluster::new(params, 1000 + r);
        let mut workload =
            PhaseWorkload::new(params.n(), 500, PhaseConfig::paper_section7(), 2000 + r);
        drive(&mut cluster, &mut workload, 500, |t, c| {
            if t >= 100 && t % 20 == 0 {
                let stats = imbalance_stats(&c.loads());
                if stats.mean >= 5.0 {
                    ratio += stats.max_over_mean;
                    samples += 1;
                }
            }
        });
        let m = cluster.metrics();
        ops += m.balance_ops;
        migrated += m.packets_migrated;
        remote += m.remote_borrow;
    }
    Outcome {
        ratio: ratio / samples.max(1) as f64,
        ops: ops / runs,
        migrated: migrated / runs,
        remote_borrow: remote / runs,
    }
}

fn main() {
    let n = 32;
    let runs = 10;
    println!("parameter sweep on {n} processors, 500 steps, {runs} runs each\n");
    println!(
        "{:>6} {:>6} {:>4}  {:>9} {:>9} {:>10} {:>13}",
        "f", "delta", "C", "max/mean", "ops/run", "moved/run", "remote-borrow"
    );
    for f in [1.1, 1.4, 1.8] {
        for delta in [1usize, 2, 4] {
            if f >= delta as f64 + 1.0 {
                continue;
            }
            let params = Params::new(n, delta, f, 4).expect("valid");
            let o = run(params, runs);
            println!(
                "{f:>6.1} {delta:>6} {:>4}  {:>9.3} {:>9} {:>10} {:>13}",
                4, o.ratio, o.ops, o.migrated, o.remote_borrow
            );
        }
    }
    println!();
    for c in [2usize, 4, 16] {
        let params = Params::new(n, 1, 1.1, c).expect("valid");
        let o = run(params, runs);
        println!(
            "{:>6.1} {:>6} {c:>4}  {:>9.3} {:>9} {:>10} {:>13}",
            1.1, 1, o.ratio, o.ops, o.migrated, o.remote_borrow
        );
    }
    println!("\nreading guide: smaller f / larger delta -> tighter balance, more ops;");
    println!("larger C -> fewer remote borrow operations at slightly looser balance.");
}
