//! Quickstart: run the SPAA'93 dynamic load balancer on the paper's §7
//! synthetic workload and print what it achieved.
//!
//!     cargo run --release --example quickstart

use dlb::core::{imbalance_stats, Cluster, LoadBalancer, Params};
use dlb::workload::drive;
use dlb::workload::phase::PhaseWorkload;

fn main() {
    // 64 processors, δ = 1 random partner per balancing, trigger factor
    // f = 1.1, borrow limit C = 4 — the paper's §7 configuration.
    let params = Params::paper_section7(64);
    let mut cluster = Cluster::new(params, /* seed */ 42);

    // The §7 phase workload: every processor alternates through random
    // generation/consumption phases, highly inhomogeneous.
    let mut workload = PhaseWorkload::paper_section7(/* seed */ 7);

    let mut worst_ratio: f64 = 1.0;
    drive(&mut cluster, &mut workload, 500, |t, c| {
        let stats = imbalance_stats(&c.loads());
        if stats.mean >= 5.0 {
            worst_ratio = worst_ratio.max(stats.max_over_mean);
        }
        if (t + 1) % 100 == 0 {
            println!(
                "t = {:3}: mean load {:7.2}  min {:4}  max {:4}  (max/mean {:.3})",
                t + 1,
                stats.mean,
                stats.min,
                stats.max,
                stats.max_over_mean
            );
        }
    });

    println!("\nworst max/mean ratio observed (mean >= 5): {worst_ratio:.3}");
    println!("\nalgorithm activity:\n{}", cluster.metrics());
    cluster
        .check_invariants()
        .expect("all structural invariants hold");
    println!("\nall invariants verified.");
}
