//! What the paper's constant-cost assumption hides: the hop-weighted
//! communication volume of the balancer across interconnect topologies,
//! and the quality/cost effect of the locality variant (balancing with
//! topology neighbours only — the paper's stated further research).
//!
//!     cargo run --release --example topology_costs

use dlb::core::{imbalance_stats, LoadBalancer, Params};
use dlb::net::{PartnerMode, TopoCluster, Topology};
use dlb::workload::drive;
use dlb::workload::phase::{PhaseConfig, PhaseWorkload};

fn run(topology: Topology, mode: PartnerMode) -> (f64, f64, u32) {
    let n = topology.n();
    let params = Params::paper_section7(n);
    let diameter = topology.diameter();
    let mut cluster = TopoCluster::new(params, topology, mode, 11);
    let mut workload = PhaseWorkload::new(n, 500, PhaseConfig::paper_section7(), 77);
    let mut ratio = 0.0;
    let mut samples = 0;
    drive(&mut cluster, &mut workload, 500, |t, c| {
        if t >= 100 && t % 20 == 0 {
            let stats = imbalance_stats(&c.loads());
            if stats.mean >= 5.0 {
                ratio += stats.max_over_mean;
                samples += 1;
            }
        }
    });
    let comm = cluster.comm();
    let hops_per_packet = comm.packet_hops as f64 / comm.packets.max(1) as f64;
    (ratio / samples.max(1) as f64, hops_per_packet, diameter)
}

fn main() {
    let topologies: Vec<(&str, Topology)> = vec![
        ("complete", Topology::Complete { n: 64 }),
        ("hypercube", Topology::Hypercube { dim: 6 }),
        ("de Bruijn", Topology::DeBruijn { dim: 6 }),
        ("torus 8x8", Topology::Torus2D { w: 8, h: 8 }),
        ("ring", Topology::Ring { n: 64 }),
        ("star", Topology::Star { n: 64 }),
    ];
    println!("64 processors, section-7 workload, 500 steps, delta = 1, f = 1.1\n");
    println!(
        "{:>10} {:>5} | {:>20} | {:>20}",
        "topology", "diam", "global: ratio / hops", "local: ratio / hops"
    );
    println!("{}", "-".repeat(66));
    for (name, topo) in topologies {
        let (gr, gh, diam) = run(topo.clone(), PartnerMode::GlobalRandom);
        let (lr, lh, _) = run(topo, PartnerMode::Neighbors);
        println!("{name:>10} {diam:>5} | {gr:>10.3} {gh:>9.3} | {lr:>10.3} {lh:>9.3}");
    }
    println!("\nreading guide: global partner choice keeps quality topology-independent");
    println!("but pays the mean hop distance per packet; neighbour-only balancing pays");
    println!("1 hop/packet and loses quality on high-diameter graphs (ring).");
}
