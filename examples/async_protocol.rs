//! The balancer as a real message protocol: event-driven simulation with
//! latency, lock conflicts and (optionally) lost control messages — the
//! machinery behind the paper's "a load balancing operation can be
//! performed in constant time" assumption, made explicit.
//!
//!     cargo run --release --example async_protocol [latency] [loss]

use dlb::core::{imbalance_stats, Params};
use dlb::net::{AsyncConfig, AsyncNetwork};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut args = std::env::args().skip(1);
    let latency: u64 = args
        .next()
        .map(|a| a.parse().expect("latency"))
        .unwrap_or(4);
    let loss: f64 = args.next().map(|a| a.parse().expect("loss")).unwrap_or(0.1);

    let n = 32;
    let params = Params::new(n, 2, 1.3, 4).expect("valid");
    let mut cfg = AsyncConfig::reliable(params, latency, 7);
    cfg.control_loss = loss;
    let mut net = AsyncNetwork::new(cfg);

    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let steps = 6_000u64;
    for t in 0..steps {
        let actions: Vec<i8> = (0..n)
            .map(|_| match rng.gen_range(0..10) {
                0..=4 => 1,
                5..=7 => -1,
                _ => 0,
            })
            .collect();
        net.tick(t, &actions);
        if (t + 1) % 1500 == 0 {
            let stats = imbalance_stats(&net.loads());
            println!(
                "t = {:5}: mean {:8.2}  max/mean {:.3}  in flight {:4}  locked {}",
                t + 1,
                stats.mean,
                stats.max_over_mean,
                net.in_flight(),
                net.locked_count()
            );
        }
    }
    net.quiesce();
    net.check_conservation().expect("no packet was lost");
    let s = net.stats();
    println!("\nprotocol statistics (latency {latency}, control loss {loss}):");
    println!("  completed ops      {}", s.completed_ops);
    println!("  aborted ops        {}", s.aborted_ops);
    println!("  messages           {}", s.messages);
    println!("  lost messages      {}", s.lost_messages);
    println!("  timeout recoveries {}", s.timeout_recoveries);
    println!("  packets moved      {}", s.packets_moved);
    println!(
        "\nconservation verified; all locks released: {}",
        net.locked_count() == 0
    );
}
