//! Checkpoint/restore: snapshot the full algorithm's state mid-run
//! (including the exact random-stream position), serialise it to JSON,
//! restore it and verify the continuation is bit-identical.
//!
//!     cargo run --release --example checkpoint

use dlb::core::{Cluster, ClusterSnapshot, LoadBalancer, Params};
use dlb::workload::phase::PhaseWorkload;
use dlb::workload::trace::EventTrace;
use dlb::workload::Workload;

fn main() {
    let params = Params::paper_section7(32);
    let mut workload = PhaseWorkload::new(32, 400, Default::default(), 9);
    let trace = EventTrace::record(&mut workload, 400);
    let mut replay = trace.replay();
    let mut events = Vec::new();

    // Run the first half.
    let mut cluster = Cluster::new(params, 123);
    for t in 0..200 {
        replay.events_at(t, &mut events);
        cluster.step(&events);
    }

    // Checkpoint to JSON (as a file-backed checkpoint would).
    let snapshot = cluster.snapshot();
    let json = snapshot.to_json();
    println!("snapshot at t = 200: {} bytes of JSON", json.len());

    // Restore into a fresh cluster and continue both.
    let restored_snap = ClusterSnapshot::from_json(&json).expect("parse");
    let mut restored = Cluster::restore(&restored_snap).expect("restore");
    for t in 200..400 {
        replay.events_at(t, &mut events);
        cluster.step(&events);
        restored.step(&events);
    }

    assert_eq!(cluster.loads(), restored.loads(), "loads identical");
    assert_eq!(cluster.metrics(), restored.metrics(), "metrics identical");
    restored.check_invariants().expect("invariants hold");
    println!("continuation is bit-identical after 200 more steps:");
    println!("  total load {}", cluster.loads().iter().sum::<u64>());
    println!("  balance ops {}", cluster.metrics().balance_ops);
    println!("checkpoint/restore verified.");
}
