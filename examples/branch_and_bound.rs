//! Best-first branch & bound for the symmetric TSP on the threaded
//! runtime — the application family the SPAA'93 algorithm was built for
//! ([7], [8]: "Efficient Parallelization of a Branch & Bound Algorithm
//! for the Symmetric Traveling Salesman Problem").
//!
//! Subproblems (partial tours) are the load packets; the runtime keeps
//! every worker's pool balanced with the paper's trigger rule.  The
//! result is verified against an exact Held–Karp dynamic program.
//!
//!     cargo run --release --example branch_and_bound [n_cities] [workers]

use dlb::bnb::tsp::{Tsp, SCALE};
use dlb::bnb::Solver;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args
        .next()
        .map(|a| a.parse().expect("n_cities"))
        .unwrap_or(13);
    let workers: usize = args
        .next()
        .map(|a| a.parse().expect("workers"))
        .unwrap_or(8);
    assert!((2..=20).contains(&n), "n_cities in 2..=20");

    let tsp = Tsp::random(n, 12345);
    let solver = Solver::with_workers(workers);

    let start = std::time::Instant::now();
    let outcome = solver.solve(&tsp);
    let elapsed = start.elapsed();

    let found = outcome.best_value.expect("a tour always exists");
    let optimal = tsp.optimum_by_held_karp();
    println!("TSP with {n} cities on {workers} workers");
    println!(
        "optimal tour (Held-Karp verification): {:.3}",
        optimal as f64 / SCALE
    );
    println!(
        "B&B found:                             {:.3}",
        found as f64 / SCALE
    );
    assert_eq!(found, optimal, "branch & bound must find the optimum");

    println!("\nnodes expanded: {}", outcome.expanded);
    println!("nodes pruned:   {}", outcome.pruned);
    println!("balancing ops:  {}", outcome.runtime.balance_ops);
    println!("packets moved:  {}", outcome.runtime.packets_moved);
    println!("per-worker expansions: {:?}", outcome.runtime.processed);
    println!("work imbalance (max/mean): {:.3}", outcome.work_imbalance());
    println!("wall time: {elapsed:?}");
}
